"""Integration tests for the U-tree: correctness, updates, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import brute_force_answer, make_mixed_objects


@pytest.fixture(scope="module")
def built_tree():
    objects = make_mixed_objects(80, seed=21)
    tree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
    for obj in objects:
        tree.insert(obj)
    return tree, objects


def queries_for(objects, count=6, seed=0):
    rng = np.random.default_rng(seed)
    centres = np.stack([obj.mbr.center for obj in objects])
    out = []
    for i in range(count):
        centre = centres[rng.integers(0, len(centres))]
        size = rng.uniform(300, 2000)
        pq = float(rng.uniform(0.1, 0.9))
        out.append(ProbRangeQuery(Rect.from_center(centre, size / 2), round(pq, 2)))
    return out


class TestQueryCorrectness:
    def test_matches_brute_force(self, built_tree):
        tree, objects = built_tree
        for query in queries_for(objects, count=8, seed=5):
            answer = tree.query(query)
            expected = brute_force_answer(objects, query.rect, query.threshold)
            assert answer.sorted_ids() == expected, (
                f"mismatch for rect={query.rect}, pq={query.threshold}"
            )

    @pytest.mark.parametrize("pq", [0.05, 0.3, 0.5, 0.7, 0.95, 1.0])
    def test_threshold_sweep(self, built_tree, pq):
        tree, objects = built_tree
        query = ProbRangeQuery(Rect([2000, 2000], [7000, 7000]), pq)
        answer = tree.query(query)
        expected = brute_force_answer(objects, query.rect, pq)
        assert answer.sorted_ids() == expected

    def test_results_monotone_in_threshold(self, built_tree):
        tree, __ = built_tree
        rect = Rect([1000, 1000], [8000, 8000])
        previous = None
        for pq in (0.1, 0.3, 0.5, 0.7, 0.9):
            ids = set(tree.query(ProbRangeQuery(rect, pq)).object_ids)
            if previous is not None:
                assert ids <= previous, "higher threshold must shrink the answer"
            previous = ids

    def test_empty_query_region(self, built_tree):
        tree, __ = built_tree
        answer = tree.query(ProbRangeQuery(Rect([90000, 90000], [90010, 90010]), 0.5))
        assert answer.object_ids == []

    def test_query_covering_everything(self, built_tree):
        tree, objects = built_tree
        answer = tree.query(ProbRangeQuery(Rect([-1000, -1000], [20000, 20000]), 0.5))
        assert answer.sorted_ids() == sorted(o.oid for o in objects)
        # Fully-contained objects are validated without any P_app work.
        assert answer.stats.prob_computations == 0
        assert answer.stats.validated_directly == len(objects)


class TestAccounting:
    def test_stats_populated(self, built_tree):
        tree, objects = built_tree
        query = queries_for(objects, count=1, seed=9)[0]
        stats = tree.query(query).stats
        assert stats.node_accesses >= 1
        assert stats.wall_seconds > 0
        assert stats.result_count == len(tree.query(query).object_ids)
        assert stats.validated_directly + stats.prob_computations >= stats.result_count

    def test_refinement_groups_by_page(self, built_tree):
        tree, objects = built_tree
        query = ProbRangeQuery(Rect([500, 500], [9500, 9500]), 0.5)
        stats = tree.query(query).stats
        # Grouping: data pages read never exceed candidate computations.
        assert stats.data_page_reads <= max(stats.prob_computations, 1)

    def test_validated_fraction(self, built_tree):
        tree, objects = built_tree
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.5)
        stats = tree.query(query).stats
        assert stats.validated_fraction == pytest.approx(1.0)


class TestUpdates:
    def test_insert_cost_breakdown(self):
        tree = UTree(2)
        obj = make_mixed_objects(1, seed=31)[0]
        cost = tree.insert(obj)
        assert cost.cpu_seconds > 0
        assert cost.io_total >= 1
        assert len(tree) == 1
        assert obj.oid in tree

    def test_dimension_mismatch_rejected(self):
        tree = UTree(3)
        obj = make_mixed_objects(1, seed=32)[0]  # 2-D object
        with pytest.raises(ValueError):
            tree.insert(obj)

    def test_delete_returns_cost(self):
        objects = make_mixed_objects(30, seed=33)
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        cost = tree.delete(objects[0].oid)
        assert cost is not None and cost.io_total >= 1
        assert objects[0].oid not in tree
        assert tree.delete(objects[0].oid) is None  # second delete: absent

    def test_delete_then_query_consistent(self):
        objects = make_mixed_objects(50, seed=34)
        estimator = AppearanceEstimator(n_samples=20_000, seed=42)
        tree = UTree(2, estimator=estimator)
        for obj in objects:
            tree.insert(obj)
        keep = objects[25:]
        for obj in objects[:25]:
            assert tree.delete(obj.oid) is not None
        tree.check_invariants()
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.3)
        answer = tree.query(query)
        expected = brute_force_answer(keep, query.rect, 0.3)
        assert answer.sorted_ids() == expected

    def test_reinsert_after_delete(self):
        objects = make_mixed_objects(20, seed=35)
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        tree.delete(objects[3].oid)
        tree.insert(objects[3])
        assert len(tree) == 20
        tree.check_invariants()


class TestStructure:
    def test_invariants_and_height(self, built_tree):
        tree, objects = built_tree
        tree.check_invariants()
        assert tree.height >= 2
        assert tree.size_bytes % 4096 == 0

    def test_custom_catalog(self):
        objects = make_mixed_objects(25, seed=36)
        catalog = UCatalog([0.0, 0.2, 0.5])
        tree = UTree(2, catalog)
        for obj in objects:
            tree.insert(obj)
        tree.check_invariants()
        assert tree.catalog.size == 3

    def test_intermediate_bounds_modes(self):
        objects = make_mixed_objects(40, seed=37)
        est = AppearanceEstimator(n_samples=20_000, seed=42)
        linear = UTree(2, estimator=est, intermediate_bounds="linear")
        exact = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42),
                      intermediate_bounds="exact")
        for obj in objects:
            linear.insert(obj)
            exact.insert(obj)
        query = ProbRangeQuery(Rect([2000, 2000], [8000, 8000]), 0.4)
        assert linear.query(query).sorted_ids() == exact.query(query).sorted_ids()

    def test_bad_bounds_mode_rejected(self):
        with pytest.raises(ValueError):
            UTree(2, intermediate_bounds="fancy")
