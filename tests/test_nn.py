"""Tests for probabilistic nearest-neighbour search on U-trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nn import (
    _maxdist,
    _mindist,
    expected_nearest_neighbors,
    probabilistic_nearest_neighbors,
)
from repro.core.utree import UTree
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion
from tests.conftest import make_mixed_objects, make_uniform_ball_object


def brute_force_nn_probabilities(objects, point, rounds=20_000, seed=0):
    """Ground-truth joint Monte-Carlo over ALL objects (no filtering)."""
    point = np.asarray(point, dtype=float)
    distances = np.empty((rounds, len(objects)))
    for col, obj in enumerate(objects):
        rng = np.random.default_rng((seed, obj.oid))
        samples = obj.region.sample(rounds, rng)
        distances[:, col] = np.linalg.norm(samples - point, axis=1)
    winners = np.argmin(distances, axis=1)
    counts = np.bincount(winners, minlength=len(objects))
    return {obj.oid: counts[col] / rounds for col, obj in enumerate(objects)}


class TestDistances:
    def test_mindist(self):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert _mindist(np.array([1.0, 1.0]), lo, hi) == 0.0
        assert _mindist(np.array([5.0, 1.0]), lo, hi) == pytest.approx(3.0)
        assert _mindist(np.array([5.0, 6.0]), lo, hi) == pytest.approx(5.0)

    def test_maxdist(self):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert _maxdist(np.array([1.0, 1.0]), lo, hi) == pytest.approx(np.sqrt(2))
        assert _maxdist(np.array([0.0, 0.0]), lo, hi) == pytest.approx(np.sqrt(8))

    def test_mindist_below_maxdist(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            lo = rng.uniform(0, 10, 2)
            hi = lo + rng.uniform(0.1, 5, 2)
            p = rng.uniform(-5, 15, 2)
            assert _mindist(p, lo, hi) <= _maxdist(p, lo, hi) + 1e-12


class TestProbabilisticNN:
    @pytest.fixture(scope="class")
    def tree_and_objects(self):
        objects = make_mixed_objects(50, seed=91)
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=10_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        return tree, objects

    def test_probabilities_sum_to_one(self, tree_and_objects):
        tree, __ = tree_and_objects
        result = probabilistic_nearest_neighbors(tree, [5000.0, 5000.0], rounds=3000, seed=1)
        assert result.candidates
        assert sum(c.probability for c in result.candidates) == pytest.approx(1.0)

    def test_sorted_by_probability(self, tree_and_objects):
        tree, __ = tree_and_objects
        result = probabilistic_nearest_neighbors(tree, [3000.0, 6000.0], rounds=2000, seed=2)
        probs = [c.probability for c in result.candidates]
        assert probs == sorted(probs, reverse=True)

    def test_obvious_winner(self):
        """One object right at the query point must dominate."""
        objects = [make_uniform_ball_object(0, [100.0, 100.0], radius=10.0)]
        objects += [
            make_uniform_ball_object(i, [100.0 + 500.0 * i, 100.0], radius=10.0)
            for i in range(1, 6)
        ]
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        result = probabilistic_nearest_neighbors(tree, [100.0, 100.0], rounds=500, seed=3)
        assert result.best().oid == 0
        assert result.best().probability == pytest.approx(1.0)

    def test_symmetric_tie(self):
        """Two identical objects equidistant from q split the probability."""
        objects = [
            make_uniform_ball_object(0, [0.0, 100.0], radius=20.0),
            make_uniform_ball_object(1, [200.0, 100.0], radius=20.0),
        ]
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        result = probabilistic_nearest_neighbors(tree, [100.0, 100.0], rounds=8000, seed=4)
        probs = {c.oid: c.probability for c in result.candidates}
        assert probs[0] == pytest.approx(0.5, abs=0.03)
        assert probs[1] == pytest.approx(0.5, abs=0.03)

    def test_matches_unfiltered_ground_truth(self, tree_and_objects):
        """Filtering must not change the distribution (same seed streams)."""
        tree, objects = tree_and_objects
        point = [4500.0, 4500.0]
        result = probabilistic_nearest_neighbors(tree, point, rounds=20_000, seed=5)
        truth = brute_force_nn_probabilities(objects, point, rounds=20_000, seed=5)
        for cand in result.candidates:
            assert cand.probability == pytest.approx(truth[cand.oid], abs=0.02)
        # Objects the filter dropped must have (near-)zero truth mass.
        kept = {c.oid for c in result.candidates}
        for oid, p in truth.items():
            if oid not in kept:
                assert p < 0.01

    def test_filter_prunes_nodes(self, tree_and_objects):
        tree, __ = tree_and_objects
        result = probabilistic_nearest_neighbors(tree, [2000.0, 2000.0], rounds=200, seed=6)
        assert result.node_accesses < tree.engine.node_count
        assert result.objects_examined <= len(tree)

    def test_qualifying_threshold(self, tree_and_objects):
        tree, __ = tree_and_objects
        result = probabilistic_nearest_neighbors(tree, [5000.0, 5000.0], rounds=2000, seed=7)
        strong = result.qualifying(0.25)
        assert all(c.probability >= 0.25 for c in strong)
        assert len(strong) <= len(result.candidates)

    def test_empty_tree(self):
        tree = UTree(2)
        result = probabilistic_nearest_neighbors(tree, [0.0, 0.0])
        assert result.candidates == []
        assert result.best() is None

    def test_validation(self, tree_and_objects):
        tree, __ = tree_and_objects
        with pytest.raises(ValueError):
            probabilistic_nearest_neighbors(tree, [0.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            probabilistic_nearest_neighbors(tree, [0.0, 0.0], rounds=0)


class TestExpectedDistanceNN:
    def test_ranking(self):
        objects = [
            make_uniform_ball_object(i, [100.0 + 300.0 * i, 100.0], radius=20.0)
            for i in range(5)
        ]
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        result = expected_nearest_neighbors(tree, [100.0, 100.0], k=3, rounds=2000, seed=8)
        assert [c.oid for c in result.candidates] == [0, 1, 2][: len(result.candidates)]
        dists = [c.expected_distance for c in result.candidates]
        assert dists == sorted(dists)

    def test_k_validation(self):
        tree = UTree(2)
        tree.insert(make_uniform_ball_object(0, [0.0, 0.0]))
        with pytest.raises(ValueError):
            expected_nearest_neighbors(tree, [0.0, 0.0], k=0)

    def test_expected_distance_reasonable(self):
        """E[dist] to a centred ball from far away ~ centre distance."""
        tree = UTree(2)
        tree.insert(make_uniform_ball_object(0, [1000.0, 0.0], radius=50.0))
        result = expected_nearest_neighbors(tree, [0.0, 0.0], k=1, rounds=4000, seed=9)
        assert result.candidates[0].expected_distance == pytest.approx(1000.0, rel=0.02)


class TestNonUniformPdfNN:
    def test_gaussian_object_beats_uniform_twin(self):
        """A Con-Gau object concentrated near q should win more often than
        a same-region uniform object slightly farther on average."""
        from repro.uncertainty.pdfs import ConstrainedGaussianDensity

        region_a = BallRegion(np.array([100.0, 0.0]), 80.0)
        region_b = BallRegion(np.array([-100.0, 0.0]), 80.0)
        a = UncertainObject(0, ConstrainedGaussianDensity(region_a, sigma=15.0, marginal_seed=0))
        b = UncertainObject(1, UniformDensity(region_b, marginal_seed=1))
        tree = UTree(2)
        tree.insert(a)
        tree.insert(b)
        # q sits at a's mean: a's mass concentrates at distance ~0-30,
        # b's spreads over 20-180.
        result = probabilistic_nearest_neighbors(tree, [100.0, 0.0], rounds=6000, seed=10)
        probs = {c.oid: c.probability for c in result.candidates}
        assert probs[0] > 0.9
