"""Smoke tests for every experiment CLI entry point at tiny scale.

`test_experiments.py` covers the `run()` functions; this module exercises
the printing `main()` paths (the part a user actually invokes) and the
`run_all` orchestrator.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig7, fig8, fig9, fig10, fig11, run_all, table1
from repro.experiments.config import Scale
from repro.experiments.data import clear_caches

TINY = Scale(
    name="tiny-mains",
    lb_objects=200,
    ca_objects=200,
    aircraft_objects=200,
    queries_per_workload=3,
    mc_samples=1500,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    for module in (fig7, fig8, fig9, fig10, fig11, table1):
        monkeypatch.setattr(module, "active_scale", lambda: TINY)


def test_fig7_main(capsys):
    fig7.main()
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "workload error" in out
    assert "2D" in out and "3D" in out


def test_fig8_main(capsys, monkeypatch):
    # Narrow the sweep so the CLI stays fast.
    monkeypatch.setattr(fig8, "catalog_sizes", lambda scale: [3, 6])
    monkeypatch.setattr(fig8, "threshold_values", lambda scale: [0.3, 0.7])
    fig8.main()
    out = capsys.readouterr().out
    assert out.count("Figure 8") == 3  # one table per dataset
    assert "cost (s)" in out


def test_table1_main(capsys):
    table1.main()
    out = capsys.readouterr().out
    assert "Table 1" in out
    for name in ("LB", "CA", "Aircraft"):
        assert name in out


def test_fig9_main(capsys):
    fig9.main()
    out = capsys.readouterr().out
    assert out.count("Figure 9") == 3
    assert "IO(U-tree)" in out


def test_fig10_main(capsys):
    fig10.main()
    out = capsys.readouterr().out
    assert out.count("Figure 10") == 3
    assert "total(U-PCR)" in out


def test_fig11_main(capsys):
    fig11.main()
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "ins CPU (s)" in out


def test_run_all(capsys, monkeypatch):
    monkeypatch.setattr(run_all, "active_scale", lambda: TINY)
    monkeypatch.setattr(fig8, "catalog_sizes", lambda scale: [3])
    monkeypatch.setattr(fig8, "threshold_values", lambda scale: [0.5])
    run_all.main()
    out = capsys.readouterr().out
    assert "all experiments done" in out
    for label in ("Figure 7", "Figure 8", "Table 1", "Figure 9", "Figure 10", "Figure 11"):
        assert f"[{label} completed" in out
