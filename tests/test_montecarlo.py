"""Tests for the Monte-Carlo appearance-probability estimator (Eq. 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator, estimate_appearance_probability
from repro.uncertainty.pdfs import ConstrainedGaussianDensity, UniformDensity
from repro.uncertainty.regions import BallRegion, BoxRegion


class TestSpecialCases:
    def test_region_inside_query_is_exactly_one(self):
        """The paper's n2 = n1 shortcut: full containment gives P = 1."""
        pdf = UniformDensity(BallRegion([5, 5], 1.0))
        est = AppearanceEstimator(n_samples=10)
        assert est.estimate(pdf, Rect([0, 0], [10, 10])) == 1.0

    def test_disjoint_is_exactly_zero(self):
        pdf = UniformDensity(BallRegion([5, 5], 1.0))
        est = AppearanceEstimator(n_samples=10)
        assert est.estimate(pdf, Rect([20, 20], [30, 30])) == 0.0

    def test_result_in_unit_interval(self):
        pdf = UniformDensity(BallRegion([5, 5], 1.0))
        est = AppearanceEstimator(n_samples=1000, seed=1)
        value = est.estimate(pdf, Rect([5, 5], [10, 10]))
        assert 0.0 <= value <= 1.0


class TestAccuracy:
    def test_uniform_box_analytic(self):
        """For a uniform box pdf, P_app is an exact area ratio (Eq. 1)."""
        region = BoxRegion(Rect([0, 0], [10, 10]))
        pdf = UniformDensity(region)
        query = Rect([0, 0], [5, 10])
        est = AppearanceEstimator(n_samples=100_000, seed=2)
        assert est.estimate(pdf, query) == pytest.approx(0.5, abs=0.01)

    def test_uniform_circle_half_plane(self):
        """Half of a circle lies left of a line through its centre."""
        pdf = UniformDensity(BallRegion([0.0, 0.0], 1.0))
        query = Rect([-2.0, -2.0], [0.0, 2.0])
        est = AppearanceEstimator(n_samples=200_000, seed=3)
        assert est.estimate(pdf, query) == pytest.approx(0.5, abs=0.01)

    def test_uniform_circle_quarter(self):
        pdf = UniformDensity(BallRegion([0.0, 0.0], 1.0))
        query = Rect([0.0, 0.0], [2.0, 2.0])
        est = AppearanceEstimator(n_samples=200_000, seed=4)
        assert est.estimate(pdf, query) == pytest.approx(0.25, abs=0.01)

    def test_gaussian_half_plane(self):
        """A centred Gaussian on a centred ball is symmetric: half left."""
        pdf = ConstrainedGaussianDensity(BallRegion([0.0, 0.0], 2.0), sigma=1.0)
        query = Rect([-3.0, -3.0], [0.0, 3.0])
        est = AppearanceEstimator(n_samples=200_000, seed=5)
        assert est.estimate(pdf, query) == pytest.approx(0.5, abs=0.01)

    def test_error_shrinks_with_samples(self):
        pdf = UniformDensity(BallRegion([0.0, 0.0], 1.0))
        query = Rect([-0.3, -0.3], [0.8, 0.9])
        truth = AppearanceEstimator(n_samples=2_000_000, seed=99).estimate(pdf, query)
        errors = []
        for n in (500, 5_000, 50_000):
            values = [
                AppearanceEstimator(n_samples=n, seed=s).estimate(pdf, query)
                for s in range(8)
            ]
            errors.append(float(np.mean([abs(v - truth) for v in values])))
        assert errors[2] < errors[0]

    def test_mc_error_scaling_is_sqrt(self):
        """Error should fall roughly as 1/sqrt(n) (within a loose factor)."""
        pdf = UniformDensity(BallRegion([0.0, 0.0], 1.0))
        query = Rect([-0.2, -0.2], [0.6, 0.7])
        truth = AppearanceEstimator(n_samples=2_000_000, seed=98).estimate(pdf, query)

        def avg_error(n):
            vals = [
                AppearanceEstimator(n_samples=n, seed=s).estimate(pdf, query)
                for s in range(12)
            ]
            return float(np.mean([abs(v - truth) for v in vals]))

        e_small, e_large = avg_error(1_000), avg_error(100_000)
        ratio = e_small / max(e_large, 1e-12)
        # Expect ~ sqrt(100) = 10; accept a broad band.
        assert 3.0 < ratio < 40.0 or e_large < 1e-4


class TestAccounting:
    def test_counts_evaluations_and_time(self):
        pdf = UniformDensity(BallRegion([5, 5], 1.0))
        est = AppearanceEstimator(n_samples=1000, seed=6)
        query = Rect([4, 4], [5.5, 5.5])
        est.estimate(pdf, query)
        est.estimate(pdf, query)
        assert est.evaluations == 2
        assert est.elapsed_seconds > 0
        est.reset_counters()
        assert est.evaluations == 0
        assert est.elapsed_seconds == 0.0

    def test_deterministic_per_object_id(self):
        pdf = UniformDensity(BallRegion([5, 5], 1.0))
        query = Rect([4, 4], [5.5, 5.5])
        a = AppearanceEstimator(n_samples=2000, seed=7).estimate(pdf, query, object_id=3)
        b = AppearanceEstimator(n_samples=2000, seed=7).estimate(pdf, query, object_id=3)
        others = [
            AppearanceEstimator(n_samples=2000, seed=7).estimate(pdf, query, object_id=k)
            for k in range(4, 10)
        ]
        assert a == b
        # Different object ids use different sample streams; with 6 other
        # ids at least one estimate must differ from a.
        assert any(v != a for v in others)

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            AppearanceEstimator(n_samples=0)

    def test_one_shot_wrapper(self):
        pdf = UniformDensity(BallRegion([0.0, 0.0], 1.0))
        value = estimate_appearance_probability(pdf, Rect([0, 0], [2, 2]), n_samples=50_000)
        assert value == pytest.approx(0.25, abs=0.02)


class TestThreeDimensional:
    def test_sphere_octant(self):
        pdf = UniformDensity(BallRegion([0.0, 0.0, 0.0], 1.0))
        query = Rect([0, 0, 0], [2, 2, 2])
        est = AppearanceEstimator(n_samples=200_000, seed=8)
        assert est.estimate(pdf, query) == pytest.approx(1.0 / 8.0, abs=0.01)

    def test_sphere_slab(self):
        """P(|z| <= h) for a uniform ball: h(3 - h^2)/2 at radius 1... checked
        via the cap-volume formula instead of trusting one closed form."""
        pdf = UniformDensity(BallRegion([0.0, 0.0, 0.0], 1.0))
        h = 0.5
        query = Rect([-2, -2, -h], [2, 2, h])
        # Volume between z = -h and z = h over the unit-ball volume.
        cap = math.pi * (1 - h) ** 2 * (2 + h) / 3.0  # cap above z = h
        expected = (4.0 * math.pi / 3.0 - 2 * cap) / (4.0 * math.pi / 3.0)
        est = AppearanceEstimator(n_samples=200_000, seed=9)
        assert est.estimate(pdf, query) == pytest.approx(expected, abs=0.01)
