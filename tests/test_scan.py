"""Tests for the sequential-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import brute_force_answer, make_mixed_objects


@pytest.fixture(scope="module")
def built_scan():
    objects = make_mixed_objects(60, seed=61)
    scan = SequentialScan(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
    for obj in objects:
        scan.insert(obj)
    return scan, objects


class TestCorrectness:
    def test_matches_brute_force(self, built_scan):
        scan, objects = built_scan
        rng = np.random.default_rng(1)
        for __ in range(8):
            centre = rng.uniform(1000, 9000, 2)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(300, 2500))),
                float(rng.uniform(0.1, 0.9)),
            )
            expected = brute_force_answer(objects, query.rect, query.threshold)
            assert scan.query(query).sorted_ids() == expected

    def test_agrees_with_utree(self, built_scan):
        scan, objects = built_scan
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        query = ProbRangeQuery(Rect([2000, 2000], [8000, 8000]), 0.5)
        assert scan.query(query).sorted_ids() == tree.query(query).sorted_ids()


class TestScanCost:
    def test_scan_reads_whole_flat_file(self, built_scan):
        scan, __ = built_scan
        query = ProbRangeQuery(Rect([0, 0], [100, 100]), 0.5)  # empty result
        stats = scan.query(query).stats
        assert stats.node_accesses == scan.scan_pages
        assert scan.scan_pages >= 1

    def test_scan_cost_grows_with_objects(self):
        small = SequentialScan(2)
        large = SequentialScan(2)
        objs = make_mixed_objects(50, seed=62)
        for obj in objs[:10]:
            small.insert(obj)
        for obj in objs:
            large.insert(obj)
        assert large.scan_pages >= small.scan_pages

    def test_tree_beats_scan_on_selective_queries(self, built_scan):
        """The point of indexing: selective queries touch fewer pages."""
        scan, objects = built_scan
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        query = ProbRangeQuery(Rect([4000, 4000], [4400, 4400]), 0.5)
        scan_io = scan.query(query).stats.node_accesses
        tree_io = tree.query(query).stats.node_accesses
        assert tree_io <= scan_io + 2  # small data; at scale the gap widens


class TestUpdates:
    def test_delete(self):
        objects = make_mixed_objects(10, seed=63)
        scan = SequentialScan(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            scan.insert(obj)
        assert scan.delete(objects[0].oid)
        assert not scan.delete(objects[0].oid)
        assert len(scan) == 9
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.2)
        expected = brute_force_answer(objects[1:], query.rect, 0.2)
        assert scan.query(query).sorted_ids() == expected

    def test_dimension_mismatch(self):
        scan = SequentialScan(3)
        with pytest.raises(ValueError):
            scan.insert(make_mixed_objects(1, seed=64)[0])

    def test_empty_scan(self):
        scan = SequentialScan(2)
        assert scan.scan_pages == 0
        answer = scan.query(ProbRangeQuery(Rect([0, 0], [1, 1]), 0.5))
        assert answer.object_ids == []
