"""Tests for STR bulk loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.index.bulkload import bulk_load
from repro.index.engine import RStarEngine
from repro.storage.layout import NodeLayout
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import brute_force_answer, make_mixed_objects


def tiny_layout(entries_per_node: int = 5) -> NodeLayout:
    page = 4096
    entry = page // entries_per_node
    return NodeLayout(leaf_entry_bytes=entry, inner_entry_bytes=entry, page_size=page)


def random_items(rng, n, layers=1, d=2):
    items = []
    for i in range(n):
        lo = rng.uniform(0, 1000, d)
        hi = lo + rng.uniform(1, 40, d)
        profile = np.broadcast_to(np.stack([lo, hi])[None], (layers, 2, d)).copy()
        items.append((profile, i))
    return items


class TestEngineBulkLoad:
    def test_structure_valid(self):
        engine = RStarEngine(2, 1, tiny_layout())
        items = random_items(np.random.default_rng(0), 200)
        bulk_load(engine, items)
        engine.check_invariants()
        assert len(engine) == 200
        assert sorted(e.data for e in engine.leaf_entries()) == list(range(200))

    def test_search_equivalence_with_inserted_tree(self):
        rng = np.random.default_rng(1)
        items = random_items(rng, 150)
        packed = RStarEngine(2, 1, tiny_layout())
        bulk_load(packed, items)
        inserted = RStarEngine(2, 1, tiny_layout())
        for profile, data in items:
            inserted.insert(profile, data)

        query = Rect([200, 200], [700, 700])
        for engine in (packed, inserted):
            found = []
            engine.traverse(
                lambda e: query.intersects(Rect(e.profile[0, 0], e.profile[0, 1])),
                lambda e: found.append(e.data)
                if query.intersects(Rect(e.profile[0, 0], e.profile[0, 1]))
                else None,
            )
            found.sort()
            if engine is packed:
                reference = found
        assert found == reference

    def test_fewer_nodes_than_incremental(self):
        rng = np.random.default_rng(2)
        items = random_items(rng, 400)
        packed = RStarEngine(2, 1, tiny_layout())
        bulk_load(packed, items)
        inserted = RStarEngine(2, 1, tiny_layout())
        for profile, data in items:
            inserted.insert(profile, data)
        assert packed.node_count <= inserted.node_count

    def test_partial_fill(self):
        rng = np.random.default_rng(3)
        items = random_items(rng, 100)
        full = RStarEngine(2, 1, tiny_layout())
        bulk_load(full, items, fill=1.0)
        slack = RStarEngine(2, 1, tiny_layout())
        bulk_load(slack, items, fill=0.6)
        assert slack.node_count >= full.node_count
        slack.check_invariants()

    def test_insert_after_bulk_load(self):
        rng = np.random.default_rng(4)
        engine = RStarEngine(2, 1, tiny_layout())
        bulk_load(engine, random_items(rng, 80), fill=0.7)
        extra = random_items(rng, 40)
        for profile, data in extra:
            engine.insert(profile, data + 1000)
        engine.check_invariants()
        assert len(engine) == 120

    def test_empty_and_single(self):
        engine = RStarEngine(2, 1, tiny_layout())
        bulk_load(engine, [])
        assert len(engine) == 0
        engine2 = RStarEngine(2, 1, tiny_layout())
        bulk_load(engine2, random_items(np.random.default_rng(5), 1))
        assert len(engine2) == 1
        assert engine2.height == 1

    def test_validation(self):
        engine = RStarEngine(2, 1, tiny_layout())
        with pytest.raises(ValueError):
            bulk_load(engine, random_items(np.random.default_rng(6), 5), fill=0.0)
        engine.insert(random_items(np.random.default_rng(7), 1)[0][0], 0)
        with pytest.raises(ValueError):
            bulk_load(engine, random_items(np.random.default_rng(8), 5))

    def test_multi_layer(self):
        rng = np.random.default_rng(9)
        layers = 4
        engine = RStarEngine(
            2, layers, tiny_layout(), chord_values=np.linspace(0, 0.5, layers)
        )
        items = random_items(rng, 120, layers=layers)
        bulk_load(engine, items)
        engine.check_invariants()

    def test_3d(self):
        rng = np.random.default_rng(10)
        engine = RStarEngine(3, 1, tiny_layout())
        bulk_load(engine, random_items(rng, 150, d=3))
        engine.check_invariants()


class TestTreeBulkLoad:
    def test_utree_bulk_load_answers_match(self):
        objects = make_mixed_objects(60, seed=95)
        packed = UTree.bulk_load(objects, estimator=AppearanceEstimator(20_000, seed=42))
        packed.check_invariants()
        assert len(packed) == 60
        query = ProbRangeQuery(Rect([2000, 2000], [8000, 8000]), 0.5)
        expected = brute_force_answer(objects, query.rect, 0.5)
        assert packed.query(query).sorted_ids() == expected

    def test_utree_bulk_smaller_or_equal(self):
        objects = make_mixed_objects(120, seed=96)
        packed = UTree.bulk_load(objects)
        inserted = UTree(2)
        for obj in objects:
            inserted.insert(obj)
        assert packed.engine.node_count <= inserted.engine.node_count

    def test_utree_bulk_then_update(self):
        objects = make_mixed_objects(50, seed=97)
        tree = UTree.bulk_load(objects[:40], estimator=AppearanceEstimator(20_000, seed=42))
        for obj in objects[40:]:
            tree.insert(obj)
        for obj in objects[:10]:
            assert tree.delete(obj.oid) is not None
        tree.check_invariants()
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.3)
        expected = brute_force_answer(objects[10:], query.rect, 0.3)
        assert tree.query(query).sorted_ids() == expected

    def test_upcr_bulk_load(self):
        objects = make_mixed_objects(60, seed=98)
        packed = UPCRTree.bulk_load(objects, estimator=AppearanceEstimator(20_000, seed=42))
        packed.check_invariants()
        query = ProbRangeQuery(Rect([1000, 1000], [9000, 9000]), 0.4)
        expected = brute_force_answer(objects, query.rect, 0.4)
        assert packed.query(query).sorted_ids() == expected

    def test_empty_requires_dim(self):
        with pytest.raises(ValueError):
            UTree.bulk_load([])
        tree = UTree.bulk_load([], dim=2)
        assert len(tree) == 0
