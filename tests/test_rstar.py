"""Tests for the classic R*-tree facade (precise rectangles)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree


def random_items(rng, n, d=2):
    items = []
    for i in range(n):
        lo = rng.uniform(0, 1000, d)
        hi = lo + rng.uniform(0.5, 60, d)
        items.append((Rect(lo, hi), i))
    return items


class TestRangeSearch:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        items = random_items(rng, 300)
        tree = RStarTree(2)
        tree.bulk_insert(items)
        tree.check_invariants()
        for seed in range(10):
            qrng = np.random.default_rng(100 + seed)
            lo = qrng.uniform(0, 900, 2)
            query = Rect(lo, lo + qrng.uniform(20, 300, 2))
            found, accesses = tree.range_search(query)
            assert sorted(found) == sorted(RStarTree.brute_force(items, query))
            assert accesses >= 1

    def test_empty_tree(self):
        tree = RStarTree(2)
        found, accesses = tree.range_search(Rect([0, 0], [1, 1]))
        assert found == []
        assert accesses == 1  # the (empty) root is read

    def test_search_visits_fewer_nodes_than_full_scan(self):
        rng = np.random.default_rng(1)
        tree = RStarTree(2)
        tree.bulk_insert(random_items(rng, 2000))
        small_query = Rect([100, 100], [120, 120])
        __, accesses = tree.range_search(small_query)
        assert accesses < tree.engine.node_count / 3

    def test_timed_search(self):
        rng = np.random.default_rng(2)
        tree = RStarTree(2)
        tree.bulk_insert(random_items(rng, 100))
        results, accesses, seconds = tree.timed_range_search(Rect([0, 0], [500, 500]))
        assert seconds >= 0.0
        assert accesses >= 1


class TestUpdates:
    def test_delete_then_search(self):
        rng = np.random.default_rng(3)
        items = random_items(rng, 150)
        tree = RStarTree(2)
        tree.bulk_insert(items)
        removed = set()
        for rect, i in items[:75]:
            assert tree.delete(lambda d, i=i: d == i, rect)
            removed.add(i)
        tree.check_invariants()
        everything = Rect([-10, -10], [2000, 2000])
        found, __ = tree.range_search(everything)
        assert sorted(found) == sorted(i for __, i in items if i not in removed)

    def test_delete_nonexistent(self):
        tree = RStarTree(2)
        tree.insert(Rect([0, 0], [1, 1]), 0)
        assert not tree.delete(lambda d: d == 5, Rect([0, 0], [1, 1]))

    def test_3d(self):
        rng = np.random.default_rng(4)
        items = random_items(rng, 200, d=3)
        tree = RStarTree(3)
        tree.bulk_insert(items)
        tree.check_invariants()
        query = Rect([0, 0, 0], [400, 400, 400])
        found, __ = tree.range_search(query)
        assert sorted(found) == sorted(RStarTree.brute_force(items, query))

    def test_all_rects_roundtrip(self):
        tree = RStarTree(2)
        rects = [Rect([i, i], [i + 1, i + 1]) for i in range(20)]
        for i, r in enumerate(rects):
            tree.insert(r, i)
        stored = tree.all_rects()
        assert len(stored) == 20
        assert set(map(hash, stored)) == set(map(hash, rects))

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=12, deadline=None)
    def test_randomised_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        items = random_items(rng, int(rng.integers(10, 150)))
        tree = RStarTree(2)
        tree.bulk_insert(items)
        lo = rng.uniform(0, 800, 2)
        query = Rect(lo, lo + rng.uniform(10, 400, 2))
        found, __ = tree.range_search(query)
        assert sorted(found) == sorted(RStarTree.brute_force(items, query))
