"""Tests for the vectorized sample-reuse refinement engine.

The load-bearing contract: every value the engine produces — scalar,
batched, cached, parallel — is **bit-identical** (``==``, never
``approx``) to the per-pair :class:`AppearanceEstimator` with the same
``(n_samples, seed)``, across every pdf family and both region shapes.
Everything else (cache accounting, executor parallelism, phase clocks) is
layered on top of that guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.exec import BatchExecutor, RefinementEngine, execute_query
from repro.exec.executor import QueryExecutor
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator, SampleCache
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    MixtureDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion

N_SAMPLES = 1500
SEED = 17


def _box(center, half):
    return BoxRegion(Rect.from_center(np.asarray(center, dtype=float), half))


def _pdf_zoo() -> list[UncertainObject]:
    """One object per pdf family, over both region shapes."""
    rng = np.random.default_rng(5)
    objs = []
    oid = 0
    for _ in range(3):
        c = rng.uniform(2000, 8000, 2)
        objs.append(UncertainObject(oid, UniformDensity(BallRegion(c, 260.0))))
        oid += 1
        c = rng.uniform(2000, 8000, 2)
        objs.append(UncertainObject(oid, UniformDensity(_box(c, 240.0))))
        oid += 1
        c = rng.uniform(2000, 8000, 2)
        objs.append(
            UncertainObject(
                oid, ConstrainedGaussianDensity(BallRegion(c, 260.0), sigma=120.0)
            )
        )
        oid += 1
        c = rng.uniform(2000, 8000, 2)
        objs.append(
            UncertainObject(
                oid, ConstrainedGaussianDensity(_box(c, 240.0), sigma=110.0)
            )
        )
        oid += 1
        c = rng.uniform(2000, 8000, 2)
        objs.append(
            UncertainObject(oid, zipf_histogram(_box(c, 250.0), 8, skew=1.1, seed=oid))
        )
        oid += 1
        c = rng.uniform(2000, 8000, 2)
        region = _box(c, 230.0)
        objs.append(
            UncertainObject(
                oid,
                MixtureDensity(
                    [
                        UniformDensity(region),
                        ConstrainedGaussianDensity(region, sigma=90.0),
                    ],
                    weights=[0.4, 0.6],
                ),
            )
        )
        oid += 1
    return objs


def _query_rects(objs) -> list[Rect]:
    """Partial overlaps, full containments and disjoint rectangles."""
    rng = np.random.default_rng(23)
    rects = []
    for obj in objs:
        centre = obj.mbr.center
        # partial overlap: offset query straddling the region boundary
        offset = rng.uniform(-1.0, 1.0, size=2) * 300.0
        rects.append(Rect.from_center(centre + offset, rng.uniform(150.0, 500.0)))
    # containment (covers everything) and far-away disjoint
    rects.append(Rect([0.0, 0.0], [10_000.0, 10_000.0]))
    rects.append(Rect([90_000.0, 90_000.0], [91_000.0, 91_000.0]))
    return rects


@pytest.fixture(scope="module")
def zoo():
    return _pdf_zoo()


@pytest.fixture(scope="module")
def rects(zoo):
    return _query_rects(zoo)


class TestBitIdentity:
    """Engine output == estimator output, across every pdf family."""

    def test_scalar_estimates_bit_identical(self, zoo, rects):
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        engine = RefinementEngine(n_samples=N_SAMPLES, seed=SEED)
        for obj in zoo:
            for rect in rects:
                expected = estimator.estimate(obj.pdf, rect, object_id=obj.oid)
                assert engine.estimate(obj, rect) == expected

    def test_batch_estimates_bit_identical(self, zoo, rects):
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        engine = RefinementEngine(n_samples=N_SAMPLES, seed=SEED)
        pairs = [(obj, rect) for obj in zoo for rect in rects]
        batched = engine.estimate_batch(pairs)
        expected = [
            estimator.estimate(obj.pdf, rect, object_id=obj.oid)
            for obj, rect in pairs
        ]
        assert batched == expected

    def test_batch_spans_chunk_boundary(self, zoo):
        """More rectangles than one mask chunk still matches exactly."""
        obj = zoo[0]
        rng = np.random.default_rng(41)
        centre = obj.mbr.center
        rects = [
            Rect.from_center(centre + rng.uniform(-300, 300, 2), 200.0)
            for _ in range(300)  # > _RECT_CHUNK
        ]
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        engine = RefinementEngine(n_samples=N_SAMPLES, seed=SEED)
        batched = engine.estimate_batch([(obj, r) for r in rects])
        expected = [estimator.estimate(obj.pdf, r, object_id=obj.oid) for r in rects]
        assert batched == expected

    def test_cached_estimator_bit_identical(self, zoo, rects):
        plain = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        cached = AppearanceEstimator(
            n_samples=N_SAMPLES,
            seed=SEED,
            cache=SampleCache(N_SAMPLES, SEED, capacity=64),
        )
        for obj in zoo:
            for rect in rects:
                assert cached.estimate(obj.pdf, rect, object_id=obj.oid) == (
                    plain.estimate(obj.pdf, rect, object_id=obj.oid)
                )


class TestSampleCache:
    def test_draw_once_then_hit(self, zoo):
        cache = SampleCache(N_SAMPLES, SEED, capacity=8)
        obj = zoo[0]
        first = cache.get(obj.pdf, obj.oid)
        second = cache.get(obj.pdf, obj.oid)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.draws == 1

    def test_lru_bound_and_eviction(self, zoo):
        cache = SampleCache(N_SAMPLES, SEED, capacity=2)
        a, b, c = zoo[0], zoo[1], zoo[2]
        cache.get(a.pdf, a.oid)
        cache.get(b.pdf, b.oid)
        cache.get(c.pdf, c.oid)  # evicts a
        assert len(cache) == 2
        assert cache.evictions == 1
        assert a.oid not in cache
        assert b.oid in cache and c.oid in cache
        cache.get(a.pdf, a.oid)  # re-draw counts another miss
        assert cache.misses == 4

    def test_capacity_zero_never_retains(self, zoo):
        cache = SampleCache(N_SAMPLES, SEED, capacity=0)
        obj = zoo[0]
        cache.get(obj.pdf, obj.oid)
        cache.get(obj.pdf, obj.oid)
        assert len(cache) == 0
        assert cache.misses == 2 and cache.hits == 0

    def test_mismatched_estimator_config_rejected(self):
        cache = SampleCache(1000, 3)
        with pytest.raises(ValueError):
            AppearanceEstimator(n_samples=2000, seed=3, cache=cache)
        with pytest.raises(ValueError):
            AppearanceEstimator(n_samples=1000, seed=4, cache=cache)
        AppearanceEstimator(n_samples=1000, seed=3, cache=cache)  # matching: fine

    def test_engine_shares_estimator_cache(self):
        cache = SampleCache(1000, 3)
        estimator = AppearanceEstimator(n_samples=1000, seed=3, cache=cache)
        engine = RefinementEngine.from_estimator(estimator)
        assert engine.cache is cache

    def test_one_shared_engine_per_estimator(self):
        estimator = AppearanceEstimator(n_samples=1000, seed=3)
        a = RefinementEngine.from_estimator(estimator)
        b = RefinementEngine.from_estimator(estimator)
        assert a is b  # executors over one method share one sample cache
        # Direct construction stays isolated.
        assert RefinementEngine(1000, 3) is not a

    def test_byte_budget_evicts_lru(self, zoo):
        one_entry = SampleCache(N_SAMPLES, SEED, capacity=8).get(
            zoo[0].pdf, zoo[0].oid
        )
        # Budget for two clouds: the third get evicts the oldest.
        cache = SampleCache(
            N_SAMPLES, SEED, capacity=8, max_bytes=2 * one_entry.nbytes
        )
        for obj in zoo[:3]:
            cache.get(obj.pdf, obj.oid)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.resident_bytes <= 2 * one_entry.nbytes
        assert zoo[0].oid not in cache

    def test_byte_budget_always_keeps_one_entry(self, zoo):
        cache = SampleCache(N_SAMPLES, SEED, capacity=8, max_bytes=1)
        cache.get(zoo[0].pdf, zoo[0].oid)
        assert len(cache) == 1  # a too-small budget still caches one

    def test_reused_oid_with_new_object_redraws(self):
        # Object ids are reusable (delete + re-insert): a hit must be
        # served only for the exact density the cloud was drawn from.
        cache = SampleCache(N_SAMPLES, SEED, capacity=8)
        old = UncertainObject(1, UniformDensity(BallRegion([1000.0, 1000.0], 200.0)))
        new = UncertainObject(1, UniformDensity(BallRegion([5000.0, 5000.0], 300.0)))
        stale = cache.get(old.pdf, 1)
        fresh = cache.get(new.pdf, 1)
        assert fresh is not stale
        assert cache.misses == 2  # the stale entry did not serve a hit
        assert not np.array_equal(fresh.points, stale.points)

    def test_batch_with_two_generations_of_one_oid(self):
        # Both generations in the same batch: each pair must be masked
        # against its own object's cloud, not the first-seen one's.
        old = UncertainObject(1, UniformDensity(BallRegion([1000.0, 1000.0], 200.0)))
        new = UncertainObject(1, UniformDensity(BallRegion([5000.0, 5000.0], 300.0)))
        rect_old = Rect.from_center([1050.0, 1050.0], 150.0)
        rect_new = Rect.from_center([5050.0, 5050.0], 200.0)
        engine = RefinementEngine(N_SAMPLES, SEED)
        values = engine.estimate_batch([(old, rect_old), (new, rect_new)])
        reference = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        assert values == [
            reference.estimate(old.pdf, rect_old, object_id=1),
            reference.estimate(new.pdf, rect_new, object_id=1),
        ]

    def test_invalidate_drops_entry(self, zoo):
        cache = SampleCache(N_SAMPLES, SEED, capacity=8)
        obj = zoo[0]
        cache.get(obj.pdf, obj.oid)
        assert obj.oid in cache
        cache.invalidate(obj.oid)
        assert obj.oid not in cache
        assert cache.resident_bytes == 0
        cache.invalidate(999_999)  # absent: no-op

    def test_batch_memo_not_stale_after_delete_reinsert(self):
        # The memo is keyed by disk address (append-only, never reused),
        # so replacing an object under the same oid cannot serve the old
        # object's memoised probability on the next run.
        tree = _tree(60)
        query = _workload(1, qs=2000.0)[0]
        executor = BatchExecutor(tree)
        executor.run([query])  # warms the memo with the old objects
        assert tree.delete(0) is not None
        replacement = UncertainObject(
            0, UniformDensity(BallRegion(query.rect.center, 220.0))
        )
        tree.insert(replacement)
        answer = executor.run([query]).answers[0]
        reference = AppearanceEstimator(n_samples=2000, seed=1)
        expected = reference.estimate(replacement.pdf, query.rect, object_id=0)
        assert (0 in answer.object_ids) == (expected >= query.threshold)

    def test_warm_memo_skips_page_fetches(self):
        tree = _tree(80)
        workload = _workload(6)
        executor = BatchExecutor(tree)
        first = executor.run(workload)
        assert first.batch.data_page_fetches > 0
        second = executor.run(workload)  # fully memoised replay
        assert second.batch.prob_computations == 0
        assert second.batch.data_page_fetches == 0  # no payloads needed
        # Logical accounting is unchanged by the skipped fetches.
        for a, b in zip(first.workload.queries, second.workload.queries):
            assert a.data_page_reads == b.data_page_reads

    def test_delete_reinsert_same_oid_answers_stay_correct(self):
        # End to end through the shared engine: replace object 0 with a
        # different object under the same oid; the next query must price
        # the new object, not replay the old cloud.
        tree = _tree(60)
        query = _workload(1, qs=2000.0)[0]
        tree.query(query)  # warms the shared engine's cache
        assert tree.delete(0) is not None
        replacement = UncertainObject(
            0, UniformDensity(BallRegion(query.rect.center, 220.0))
        )
        tree.insert(replacement)
        answer = tree.query(query)
        reference = AppearanceEstimator(n_samples=2000, seed=1)
        expected = reference.estimate(replacement.pdf, query.rect, object_id=0)
        assert (0 in answer.object_ids) == (expected >= query.threshold)


class TestEstimatorTiming:
    def test_short_circuits_are_untimed(self, zoo):
        obj = zoo[0]
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        containing = Rect([0.0, 0.0], [10_000.0, 10_000.0])
        disjoint = Rect([90_000.0, 90_000.0], [91_000.0, 91_000.0])
        assert estimator.estimate(obj.pdf, containing, object_id=obj.oid) == 1.0
        assert estimator.estimate(obj.pdf, disjoint, object_id=obj.oid) == 0.0
        assert estimator.evaluations == 2
        assert estimator.elapsed_seconds == 0.0  # no Monte-Carlo work charged

    def test_real_work_is_timed(self, zoo):
        obj = zoo[0]
        estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)
        partial = Rect.from_center(obj.mbr.center + 100.0, 200.0)
        estimator.estimate(obj.pdf, partial, object_id=obj.oid)
        assert estimator.elapsed_seconds > 0.0


def _tree(n: int = 140):
    rng = np.random.default_rng(9)
    centres = rng.uniform(0, 10_000, (n, 2))
    tree = UTree(2, estimator=AppearanceEstimator(n_samples=2000, seed=1))
    for i in range(n):
        tree.insert(UncertainObject(i, UniformDensity(BallRegion(centres[i], 250.0))))
    return tree


def _workload(n: int, qs: float = 1500.0, pq: float = 0.5, seed: int = 31):
    rng = np.random.default_rng(seed)
    centres = rng.uniform(1000, 9000, (n, 2))
    return [ProbRangeQuery(Rect.from_center(c, qs / 2.0), pq) for c in centres]


class TestExecutorEngineIntegration:
    def test_workload_sample_cache_reuse(self):
        tree = _tree()
        workload = _workload(6) * 2  # repeats guarantee candidate reuse
        stats = QueryExecutor(tree).run(workload)
        # Same objects recur across overlapping queries: the shared
        # engine must serve some estimates from cached clouds.
        assert stats.total_sample_cache_misses > 0
        assert stats.total_sample_cache_hits > 0
        # Cache traffic never exceeds P_app computations (short-circuited
        # pairs skip the cache entirely).
        total_probs = sum(q.prob_computations for q in stats.queries)
        assert (
            stats.total_sample_cache_hits + stats.total_sample_cache_misses
            <= total_probs
        )

    def test_phase_clocks_populated(self):
        tree = _tree()
        answer = execute_query(tree, _workload(1)[0])
        s = answer.stats
        assert s.filter_seconds > 0.0
        assert s.refine_seconds >= 0.0
        assert s.wall_seconds >= s.filter_seconds + s.fetch_seconds + s.refine_seconds - 1e-6


class TestParallelBatchExecutor:
    def test_parallelism_one_matches_per_query_counters_exactly(self):
        # The independent reference is the sequential single-query
        # executor: with memoisation and page dedup disabled, a
        # parallelism=1 batch must reproduce its QueryStats field by
        # field (the ISSUE acceptance criterion).
        tree = _tree()
        workload = _workload(8)
        reference = [execute_query(tree, q) for q in workload]
        batch = BatchExecutor(
            tree, parallelism=1, memoize=False, dedupe_pages=False
        ).run(workload)
        for ref, bat in zip(reference, batch.workload.queries):
            assert bat.node_accesses == ref.stats.node_accesses
            assert bat.data_page_reads == ref.stats.data_page_reads
            assert bat.prob_computations == ref.stats.prob_computations
            assert bat.memoized_probs == ref.stats.memoized_probs == 0
            assert bat.validated_directly == ref.stats.validated_directly
            assert bat.pruned == ref.stats.pruned
            assert bat.result_count == ref.stats.result_count
            assert bat.physical_reads == ref.stats.physical_reads

    def test_parallelism_one_memo_conserves_computations(self):
        # With the memo on, every P_app is either computed or served from
        # the memo; the two must sum to the memo-less computation count.
        tree = _tree()
        workload = _workload(6) * 2
        plain = BatchExecutor(tree, parallelism=1, memoize=False).run(workload)
        memoed = BatchExecutor(tree, parallelism=1).run(workload)
        for p, m in zip(plain.workload.queries, memoed.workload.queries):
            assert m.prob_computations + m.memoized_probs == p.prob_computations
        assert memoed.batch.memo_hits > 0

    def test_parallel_answers_identical_to_sequential(self):
        tree = _tree()
        workload = _workload(10)
        expected = [execute_query(tree, q).object_ids for q in workload]
        for parallelism in (2, 4):
            result = BatchExecutor(tree, parallelism=parallelism).run(workload)
            assert [a.object_ids for a in result.answers] == expected
            assert result.batch.parallelism == parallelism

    def test_parallel_logical_io_preserved(self):
        tree = _tree()
        workload = _workload(8)
        serial = BatchExecutor(tree, parallelism=1).run(workload)
        parallel = BatchExecutor(tree, parallelism=3).run(workload)
        for s, p in zip(serial.workload.queries, parallel.workload.queries):
            assert s.node_accesses == p.node_accesses
            assert s.data_page_reads == p.data_page_reads
        assert (
            serial.batch.logical_data_page_reads
            == parallel.batch.logical_data_page_reads
        )
        assert serial.batch.unique_data_pages == parallel.batch.unique_data_pages

    def test_parallel_with_simulated_latency_and_no_dedupe(self):
        tree = _tree(60)
        workload = _workload(5)
        expected = [execute_query(tree, q).object_ids for q in workload]
        result = BatchExecutor(
            tree,
            parallelism=3,
            dedupe_pages=False,
            io_latency_seconds=0.001,
        ).run(workload)
        assert [a.object_ids for a in result.answers] == expected
        assert result.batch.fetch_seconds > 0.0
        assert result.batch.data_page_fetches == result.batch.logical_data_page_reads

    def test_invalid_parallelism_rejected(self):
        tree = _tree(20)
        with pytest.raises(ValueError):
            BatchExecutor(tree, parallelism=0)
        with pytest.raises(ValueError):
            BatchExecutor(tree, io_latency_seconds=-1.0)

    def test_batch_sample_cache_accounting(self):
        tree = _tree()
        workload = _workload(8)
        executor = BatchExecutor(tree, memoize=False)
        first = executor.run(workload)
        assert first.batch.sample_cache_misses > 0
        # The engine persists across runs: a replay draws nothing new.
        second = executor.run(workload)
        assert second.batch.sample_cache_misses == 0
        assert second.batch.sample_cache_hits > 0
        assert second.batch.sample_cache_hit_rate == 1.0
