"""Structural tests for the multi-layer R* engine.

Tiny page sizes force deep trees so splits, forced reinserts and condense
paths all run with small inputs.  Invariants checked: capacity bounds,
uniform leaf depth, parent-child profile containment, and exact
recall/precision of guided traversal against brute force.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.index.engine import RStarEngine
from repro.storage.layout import NodeLayout


def tiny_layout(entries_per_node: int = 4) -> NodeLayout:
    """A layout capping nodes at `entries_per_node` entries."""
    page = 4096
    entry = page // entries_per_node
    return NodeLayout(leaf_entry_bytes=entry, inner_entry_bytes=entry, page_size=page)


def single_layer_profile(lo, hi):
    return np.array([[lo, hi]], dtype=float)


def random_profile(rng, layers: int, d: int = 2, linear: bool = False):
    """A valid multi-layer profile: layer boxes shrink with the layer index.

    With ``linear=True`` the faces are affine in the layer index — the
    shape CFB profiles have, and the precondition for chord-mode summaries
    to be conservative.
    """
    lo = rng.uniform(0, 1000, d)
    extent = rng.uniform(1.0, 120.0, d)
    profile = np.empty((layers, 2, d))
    if linear:
        slope = extent / 2.0 * rng.uniform(0.0, 1.0, d)
        for j in range(layers):
            t = j / max(1, layers - 1)
            profile[j, 0] = lo + t * slope
            profile[j, 1] = lo + extent - t * slope
        return profile
    for j in range(layers):
        shrink = (j / max(1, layers - 1)) * extent / 2.0 * rng.uniform(0.5, 1.0)
        profile[j, 0] = lo + shrink
        profile[j, 1] = lo + extent - shrink
    return profile


class TestSingleLayerEngine:
    def test_insert_search_roundtrip(self):
        engine = RStarEngine(2, 1, tiny_layout())
        rng = np.random.default_rng(0)
        items = []
        for i in range(200):
            lo = rng.uniform(0, 1000, 2)
            hi = lo + rng.uniform(1, 50, 2)
            engine.insert(single_layer_profile(lo, hi), i)
            items.append(Rect(lo, hi))
        engine.check_invariants()
        assert len(engine) == 200
        assert engine.height > 1

        query = Rect([200, 200], [500, 500])
        found = []
        engine.traverse(
            lambda e: query.intersects(Rect(e.profile[0, 0], e.profile[0, 1])),
            lambda e: found.append(e.data)
            if query.intersects(Rect(e.profile[0, 0], e.profile[0, 1]))
            else None,
        )
        expected = [i for i, r in enumerate(items) if query.intersects(r)]
        assert sorted(found) == sorted(expected)

    def test_traverse_charges_reads(self):
        engine = RStarEngine(2, 1, tiny_layout())
        rng = np.random.default_rng(1)
        for i in range(50):
            lo = rng.uniform(0, 100, 2)
            engine.insert(single_layer_profile(lo, lo + 5), i)
        engine.io.reset()
        accesses = engine.traverse(lambda e: True, lambda e: None)
        assert accesses == engine.io.reads
        assert accesses == engine.node_count

    def test_delete_roundtrip(self):
        engine = RStarEngine(2, 1, tiny_layout())
        rng = np.random.default_rng(2)
        profiles = []
        for i in range(120):
            lo = rng.uniform(0, 1000, 2)
            p = single_layer_profile(lo, lo + rng.uniform(1, 30, 2))
            profiles.append(p)
            engine.insert(p, i)
        order = rng.permutation(120)
        for count, idx in enumerate(order):
            assert engine.delete(lambda data, idx=idx: data == idx, profiles[idx])
            if count % 10 == 0:
                engine.check_invariants()
        assert len(engine) == 0
        assert engine.height == 1

    def test_delete_missing_returns_false(self):
        engine = RStarEngine(2, 1, tiny_layout())
        lo = np.array([0.0, 0.0])
        engine.insert(single_layer_profile(lo, lo + 1), 1)
        assert not engine.delete(lambda data: data == 99, single_layer_profile(lo, lo + 1))
        assert len(engine) == 1

    def test_interleaved_insert_delete(self):
        engine = RStarEngine(2, 1, tiny_layout())
        rng = np.random.default_rng(3)
        live = {}
        next_id = 0
        for step in range(400):
            if live and rng.random() < 0.4:
                victim = int(rng.choice(list(live)))
                assert engine.delete(lambda d, v=victim: d == v, live.pop(victim))
            else:
                lo = rng.uniform(0, 500, 2)
                p = single_layer_profile(lo, lo + rng.uniform(1, 40, 2))
                engine.insert(p, next_id)
                live[next_id] = p
                next_id += 1
            if step % 50 == 0:
                engine.check_invariants()
        engine.check_invariants()
        assert len(engine) == len(live)


class TestMultiLayerEngine:
    @pytest.mark.parametrize("chord", [False, True])
    def test_invariants_after_bulk_insert(self, chord):
        layers = 5
        chord_values = np.linspace(0.0, 0.5, layers) if chord else None
        engine = RStarEngine(2, layers, tiny_layout(), chord_values=chord_values)
        rng = np.random.default_rng(4)
        for i in range(150):
            engine.insert(random_profile(rng, layers, linear=chord), i)
        engine.check_invariants()
        assert len(engine) == 150

    def test_parent_bounds_every_layer(self):
        """For every layer j, a parent entry's layer-j box contains each
        child's layer-j box — the property Observation 4 relies on."""
        layers = 4
        engine = RStarEngine(
            2, layers, tiny_layout(), chord_values=np.linspace(0.0, 0.5, layers)
        )
        rng = np.random.default_rng(5)
        for i in range(120):
            engine.insert(random_profile(rng, layers, linear=True), i)

        def check(node):
            if node.is_leaf:
                return
            for entry in node.entries:
                child = entry.child
                for child_entry in child.entries:
                    assert np.all(
                        entry.profile[:, 0, :] <= child_entry.profile[:, 0, :] + 1e-6
                    )
                    assert np.all(
                        child_entry.profile[:, 1, :] <= entry.profile[:, 1, :] + 1e-6
                    )
                check(child)

        check(engine.root)

    def test_chord_profiles_are_linear(self):
        layers = 6
        values = np.linspace(0.0, 0.5, layers)
        engine = RStarEngine(2, layers, tiny_layout(), chord_values=values)
        rng = np.random.default_rng(6)
        for i in range(80):
            engine.insert(random_profile(rng, layers, linear=True), i)
        # Every intermediate entry profile must lie on the chord between
        # its first and last layers.
        def check(node):
            if node.is_leaf:
                return
            for entry in node.entries:
                first, last = entry.profile[0], entry.profile[-1]
                t = (values - values[0]) / (values[-1] - values[0])
                expected = first[None] + t[:, None, None] * (last - first)[None]
                assert np.allclose(entry.profile, expected, atol=1e-9)
                check(entry.child)

        check(engine.root)

    def test_validation_errors(self):
        layout = tiny_layout()
        with pytest.raises(ValueError):
            RStarEngine(0, 1, layout)
        with pytest.raises(ValueError):
            RStarEngine(2, 0, layout)
        with pytest.raises(ValueError):
            RStarEngine(2, 3, layout, chord_values=np.array([0.0, 0.5]))
        with pytest.raises(ValueError):
            RStarEngine(2, 2, layout, split_mode="bogus")
        with pytest.raises(ValueError):
            RStarEngine(2, 2, layout, split_layer=5)
        engine = RStarEngine(2, 2, layout)
        with pytest.raises(ValueError):
            engine.insert(np.zeros((3, 2, 2)), 0)

    def test_all_layers_split_mode(self):
        layers = 3
        engine = RStarEngine(2, layers, tiny_layout(), split_mode="all-layers")
        rng = np.random.default_rng(7)
        for i in range(100):
            engine.insert(random_profile(rng, layers), i)
        engine.check_invariants()

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_randomised_lifecycle(self, seed):
        rng = np.random.default_rng(seed)
        layers = int(rng.integers(1, 6))
        cap = int(rng.integers(3, 8))
        chord = rng.random() < 0.5 and layers > 1
        engine = RStarEngine(
            2,
            layers,
            tiny_layout(cap),
            chord_values=np.linspace(0.0, 0.5, layers) if chord else None,
        )
        live = {}
        for i in range(int(rng.integers(30, 120))):
            p = random_profile(rng, layers, linear=chord)
            engine.insert(p, i)
            live[i] = p
        for victim in rng.permutation(list(live))[: len(live) // 2]:
            assert engine.delete(lambda d, v=victim: d == v, live.pop(int(victim)))
        engine.check_invariants()
        assert len(engine) == len(live)
        assert sorted(e.data for e in engine.leaf_entries()) == sorted(live)


class TestIOAccounting:
    def test_insert_charges_io(self):
        engine = RStarEngine(2, 1, tiny_layout())
        rng = np.random.default_rng(8)
        lo = rng.uniform(0, 100, 2)
        before = engine.io.total
        engine.insert(single_layer_profile(lo, lo + 1), 0)
        assert engine.io.total > before

    def test_node_count_tracks_store(self):
        engine = RStarEngine(2, 1, tiny_layout(3))
        rng = np.random.default_rng(9)
        for i in range(60):
            lo = rng.uniform(0, 1000, 2)
            engine.insert(single_layer_profile(lo, lo + 5), i)
        counted = [0]

        def visit(node):
            counted[0] += 1
            if not node.is_leaf:
                for e in node.entries:
                    visit(e.child)

        visit(engine.root)
        assert counted[0] == engine.node_count
        assert engine.size_bytes == engine.node_count * 4096
