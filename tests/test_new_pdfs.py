"""Tests for the extended pdf families: radial-exponential, Poisson
histograms, and arbitrary-callable tabulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.pcr import compute_pcrs
from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    RadialExponentialDensity,
    poisson_histogram,
    tabulate_density,
)
from repro.uncertainty.regions import BallRegion, BoxRegion
from tests.conftest import brute_force_answer


def monte_carlo_integral(density, n=60_000, seed=0):
    rng = np.random.default_rng(seed)
    pts = density.region.sample(n, rng)
    return float(density.density(pts).mean() * density.region.volume())


class TestRadialExponential:
    def test_integrates_to_one(self):
        pdf = RadialExponentialDensity(BallRegion([0.0, 0.0], 5.0), scale=2.0)
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)

    def test_decays_with_distance(self):
        pdf = RadialExponentialDensity(BallRegion([0.0, 0.0], 5.0), scale=1.0)
        assert pdf.density_at([0.0, 0.0]) > pdf.density_at([2.0, 0.0])
        assert pdf.density_at([2.0, 0.0]) > pdf.density_at([4.0, 0.0])

    def test_zero_outside(self):
        pdf = RadialExponentialDensity(BallRegion([0.0, 0.0], 1.0), scale=1.0)
        assert pdf.density_at([3.0, 0.0]) == 0.0

    def test_custom_mode(self):
        region = BoxRegion(Rect([0.0, 0.0], [10.0, 10.0]))
        pdf = RadialExponentialDensity(region, scale=2.0, mode=[8.0, 8.0])
        assert pdf.density_at([8.0, 8.0]) > pdf.density_at([1.0, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            RadialExponentialDensity(BallRegion([0, 0], 1.0), scale=0.0)
        with pytest.raises(ValueError):
            RadialExponentialDensity(BallRegion([0, 0], 1.0), scale=1.0, mode=[0, 0, 0])

    def test_marginals_median_near_mode(self):
        """Symmetric decay about the centre: median at the centre."""
        pdf = RadialExponentialDensity(
            BallRegion([100.0, 50.0], 20.0), scale=5.0, marginal_seed=3
        )
        m = pdf.marginals()
        assert m.quantile(0, 0.5) == pytest.approx(100.0, abs=1.5)
        assert m.quantile(1, 0.5) == pytest.approx(50.0, abs=1.5)

    def test_pcrs_tighter_than_uniform(self):
        """Mass concentration makes inner quantile boxes smaller than the
        uniform pdf's over the same region."""
        from repro.uncertainty.pdfs import UniformDensity

        region = BallRegion([0.0, 0.0], 100.0)
        catalog = UCatalog([0.0, 0.25, 0.5])
        expo = compute_pcrs(
            UncertainObject(0, RadialExponentialDensity(region, scale=15.0, marginal_seed=1)),
            catalog,
        )
        uni = compute_pcrs(UncertainObject(1, UniformDensity(region, marginal_seed=1)), catalog)
        assert expo.box(1).area() < uni.box(1).area()

    def test_indexable_end_to_end(self):
        rng = np.random.default_rng(11)
        objects = [
            UncertainObject(
                i,
                RadialExponentialDensity(
                    BallRegion(rng.uniform(1000, 9000, 2), 250.0),
                    scale=80.0,
                    marginal_seed=i,
                ),
            )
            for i in range(30)
        ]
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        query = ProbRangeQuery(Rect([2000, 2000], [8000, 8000]), 0.5)
        assert tree.query(query).sorted_ids() == brute_force_answer(
            objects, query.rect, 0.5
        )


class TestPoissonHistogram:
    def _region(self):
        return BoxRegion(Rect([0.0, 0.0], [16.0, 16.0]))

    def test_integrates_to_one(self):
        pdf = poisson_histogram(self._region(), rates=[3.0, 6.0], cells_per_axis=16)
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)

    def test_mode_near_rate(self):
        """The likeliest cell index on each axis is near the rate."""
        pdf = poisson_histogram(self._region(), rates=[3.0, 10.0], cells_per_axis=16)
        idx = np.unravel_index(np.argmax(pdf.weights), pdf.weights.shape)
        assert idx[0] in (2, 3)
        assert idx[1] in (9, 10)

    def test_marginal_factorises(self):
        """Product construction: the joint equals the outer product."""
        pdf = poisson_histogram(self._region(), rates=[2.0, 5.0], cells_per_axis=12)
        row = pdf.weights.sum(axis=1)
        col = pdf.weights.sum(axis=0)
        assert np.allclose(np.multiply.outer(row, col), pdf.weights, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_histogram(self._region(), rates=[1.0], cells_per_axis=8)
        with pytest.raises(ValueError):
            poisson_histogram(self._region(), rates=[1.0, -2.0])
        with pytest.raises(ValueError):
            poisson_histogram(self._region(), rates=[1.0, 1.0], cells_per_axis=0)


class TestTabulateDensity:
    def _region(self):
        return BoxRegion(Rect([0.0, 0.0], [10.0, 10.0]))

    def test_recovers_linear_ramp(self):
        """Tabulating f(x, y) ∝ x reproduces its marginal quantiles."""
        pdf = tabulate_density(lambda pts: pts[:, 0], self._region(), cells_per_axis=64)
        m = pdf.marginals()
        # CDF of density 2x/100 on [0,10]: F(x) = x^2/100; median at sqrt(50).
        assert m.quantile(0, 0.5) == pytest.approx(np.sqrt(50.0), abs=0.2)
        # y-marginal is uniform.
        assert m.quantile(1, 0.5) == pytest.approx(5.0, abs=0.2)

    def test_integrates_to_one(self):
        pdf = tabulate_density(
            lambda pts: np.exp(-np.abs(pts[:, 0] - 5.0)), self._region(), cells_per_axis=32
        )
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            tabulate_density(lambda pts: -np.ones(len(pts)), self._region())
        with pytest.raises(ValueError):
            tabulate_density(lambda pts: np.ones((len(pts), 2)), self._region())
        with pytest.raises(ValueError):
            tabulate_density(lambda pts: np.ones(len(pts)), self._region(), cells_per_axis=0)

    def test_tabulated_indexable_end_to_end(self):
        """Anything tabulated is queryable with exact agreement."""
        rng = np.random.default_rng(13)
        objects = []
        for i in range(20):
            centre = rng.uniform(1000, 9000, 2)
            region = BoxRegion(Rect(centre - 200, centre + 200))

            def wave(pts, c=centre):
                return 1.0 + np.sin(pts[:, 0] / 40.0) * np.cos(pts[:, 1] / 40.0)

            objects.append(
                UncertainObject(i, tabulate_density(wave, region, cells_per_axis=16,
                                                    marginal_seed=i))
            )
        tree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        query = ProbRangeQuery(Rect([2000, 2000], [7000, 7000]), 0.4)
        assert tree.query(query).sorted_ids() == brute_force_answer(
            objects, query.rect, 0.4
        )
