"""Tests for the paged storage simulator and entry layouts."""

from __future__ import annotations

import pytest

from repro.storage.layout import (
    FLOAT_SIZE,
    POINTER_SIZE,
    NodeLayout,
    rstar_layout,
    upcr_layout,
    utree_layout,
)
from repro.storage.pager import DataFile, DiskAddress, IOCounter, PageStore


class TestIOCounter:
    def test_counts_and_reset(self):
        io = IOCounter()
        io.record_read()
        io.record_read(3)
        io.record_write()
        assert (io.reads, io.writes, io.total) == (4, 1, 5)
        io.reset()
        assert io.total == 0

    def test_snapshot_delta(self):
        io = IOCounter()
        io.record_read(2)
        snap = io.snapshot()
        io.record_read()
        io.record_write(4)
        assert io.delta(snap) == (1, 4)


class TestDataFile:
    def test_packing_first_fit(self):
        df = DataFile(page_size=100)
        addresses = [df.append(f"obj{i}", 40) for i in range(5)]
        # Two 40-byte records per 100-byte page.
        assert [a.page_id for a in addresses] == [0, 0, 1, 1, 2]
        assert df.page_count == 3

    def test_read_costs_one_io(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        addr = df.append("payload", 10)
        io.reset()
        assert df.read(addr) == "payload"
        assert io.reads == 1

    def test_read_page_returns_all(self):
        df = DataFile(page_size=100)
        df.append("a", 30)
        df.append("b", 30)
        assert df.read_page(0) == ["a", "b"]

    def test_oversized_record_clamped_to_page(self):
        df = DataFile(page_size=100)
        a1 = df.append("big", 5000)
        a2 = df.append("next", 10)
        assert a1.page_id != a2.page_id

    def test_rejects_bad_sizes(self):
        df = DataFile(page_size=100)
        with pytest.raises(ValueError):
            df.append("x", 0)
        with pytest.raises(ValueError):
            DataFile(page_size=0)

    def test_append_charges_write_per_new_page(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        df.append("a", 60)
        df.append("b", 60)  # does not fit -> new page
        assert io.writes == 2

    def test_size_bytes(self):
        df = DataFile(page_size=128)
        df.append("a", 100)
        df.append("b", 100)
        assert df.size_bytes == 2 * 128


class TestPageStore:
    def test_allocate_free(self):
        store = PageStore()
        p1 = store.allocate()
        p2 = store.allocate()
        assert p1 != p2
        assert store.page_count == 2
        store.free(p1)
        assert store.page_count == 1

    def test_touch_charges_io(self):
        io = IOCounter()
        store = PageStore(io)
        p = store.allocate()
        store.touch_read(p)
        store.touch_write(p)
        assert (io.reads, io.writes) == (1, 1)

    def test_touch_unallocated_raises(self):
        store = PageStore()
        with pytest.raises(KeyError):
            store.touch_read(99)

    def test_size_bytes(self):
        store = PageStore(page_size=4096)
        store.allocate()
        store.allocate()
        assert store.size_bytes == 8192


class TestLayouts:
    def test_utree_2d_matches_paper(self):
        """Section 6.3: two CFBs are 16 values in 2-D, 24 in 3-D."""
        layout2 = utree_layout(2)
        assert layout2.leaf_entry_bytes == 16 * FLOAT_SIZE + 4 * FLOAT_SIZE + POINTER_SIZE
        layout3 = utree_layout(3)
        assert layout3.leaf_entry_bytes == 24 * FLOAT_SIZE + 6 * FLOAT_SIZE + POINTER_SIZE

    def test_upcr_matches_paper(self):
        """Section 6.3: m PCRs are 36 values at m=9 (2-D), 60 at m=10 (3-D)."""
        layout2 = upcr_layout(2, 9)
        assert layout2.inner_entry_bytes == 36 * FLOAT_SIZE + POINTER_SIZE
        layout3 = upcr_layout(3, 10)
        assert layout3.inner_entry_bytes == 60 * FLOAT_SIZE + POINTER_SIZE

    def test_utree_fanout_larger_than_upcr(self):
        ut = utree_layout(2)
        up = upcr_layout(2, 9)
        assert ut.leaf_capacity > up.leaf_capacity
        assert ut.inner_capacity > up.inner_capacity

    def test_capacity_floor_is_two(self):
        tiny = NodeLayout(leaf_entry_bytes=5000, inner_entry_bytes=5000, page_size=4096)
        assert tiny.leaf_capacity == 2

    def test_min_fill(self):
        layout = rstar_layout(2)
        assert layout.min_fill(100) == 40
        assert layout.min_fill(2) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            utree_layout(0)
        with pytest.raises(ValueError):
            upcr_layout(2, 0)

    def test_upcr_size_grows_with_catalog(self):
        assert upcr_layout(2, 12).leaf_entry_bytes > upcr_layout(2, 3).leaf_entry_bytes
