"""Tests for the paged storage simulator and entry layouts."""

from __future__ import annotations

import pytest

from repro.storage.layout import (
    FLOAT_SIZE,
    POINTER_SIZE,
    WAL_HEADER_BYTES,
    NodeLayout,
    record_span_pages,
    rstar_layout,
    upcr_layout,
    utree_layout,
    wal_entry_bytes,
)
from repro.storage.pager import DataFile, DiskAddress, IOCounter, PageStore


class TestIOCounter:
    def test_counts_and_reset(self):
        io = IOCounter()
        io.record_read()
        io.record_read(3)
        io.record_write()
        assert (io.reads, io.writes, io.total) == (4, 1, 5)
        io.reset()
        assert io.total == 0

    def test_snapshot_delta(self):
        io = IOCounter()
        io.record_read(2)
        snap = io.snapshot()
        io.record_read()
        io.record_write(4)
        assert io.delta(snap) == (1, 4)


class TestDataFile:
    def test_packing_first_fit(self):
        df = DataFile(page_size=100)
        addresses = [df.append(f"obj{i}", 40) for i in range(5)]
        # Two 40-byte records per 100-byte page.
        assert [a.page_id for a in addresses] == [0, 0, 1, 1, 2]
        assert df.page_count == 3

    def test_read_costs_one_io(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        addr = df.append("payload", 10)
        io.reset()
        assert df.read(addr) == "payload"
        assert io.reads == 1

    def test_read_page_returns_all(self):
        df = DataFile(page_size=100)
        df.append("a", 30)
        df.append("b", 30)
        assert df.read_page(0) == ["a", "b"]

    def test_oversized_record_spills_across_pages(self):
        # Regression: append used to clamp size_bytes to one page, so
        # multi-page records under-counted bytes and write I/O.
        io = IOCounter()
        df = DataFile(io, page_size=100)
        a1 = df.append("big", 250)  # ceil(250/100) = 3 pages
        assert io.writes == 3
        assert df.page_count == 3
        assert df.size_bytes == 3 * 100
        assert df.live_bytes == 250
        # The spill run is dedicated: the next record starts a new page.
        a2 = df.append("next", 10)
        assert (a1.page_id, a1.slot) == (0, 0)
        assert a2.page_id == 3
        assert df.read(a1) == "big"

    def test_spilled_read_charges_span_pages(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        addr = df.append("big", 350)
        io.reset()
        assert df.read(addr) == "big"
        assert io.reads == 4
        # peek stays free.
        assert df.peek(addr) == "big"
        assert io.reads == 4

    def test_exact_page_multiple_does_not_overallocate(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        df.append("two", 200)
        assert (df.page_count, io.writes) == (2, 2)


class TestDataFileReclaim:
    def test_release_noop_by_default(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        addr = df.append("a", 40)
        io.reset()
        assert df.release(addr) is False
        assert df.read(addr) == "a"  # record untouched
        assert (df.record_count, df.free_slots) == (1, 0)
        assert io.writes == 0

    def test_release_then_exact_size_reuse(self):
        io = IOCounter()
        df = DataFile(io, page_size=100, reclaim=True)
        a = df.append("a", 40)
        df.append("b", 40)
        io.reset()
        assert df.release(a) is True
        assert io.total == 0  # freeing is a metadata-only operation
        assert (df.free_slots, df.free_bytes) == (1, 40)
        reused = df.append("c", 40)
        assert reused == a  # same page, same slot
        assert io.writes == 1  # the reused page is rewritten in place
        assert df.page_count == 1  # the file did not grow
        assert df.reclaimed_slots == 1
        assert df.read(reused) == "c"

    def test_reuse_requires_exact_size(self):
        df = DataFile(page_size=100, reclaim=True)
        a = df.append("a", 40)
        df.release(a)
        other = df.append("b", 30)  # smaller: must not take the 40-byte slot
        assert other != a
        again = df.append("c", 40)
        assert again == a

    def test_released_slot_guards(self):
        df = DataFile(page_size=100, reclaim=True)
        a = df.append("a", 40)
        df.append("b", 40)
        df.release(a)
        assert df.release(a) is False  # double release is a no-op
        with pytest.raises(KeyError):
            df.read(a)
        with pytest.raises(KeyError):
            df.peek(a)
        # read_page preserves slot positions; the freed slot reads None.
        assert df.read_page(0) == [None, "b"]
        # peek_page filters to live records for iteration-style callers.
        assert df.peek_page(0) == ["b"]

    def test_byte_accounting_through_churn(self):
        df = DataFile(page_size=100, reclaim=True)
        a = df.append("a", 60)
        b = df.append("b", 30)
        assert (df.live_bytes, df.free_bytes) == (90, 0)
        df.release(a)
        assert (df.live_bytes, df.free_bytes) == (30, 60)
        df.append("c", 60)
        assert (df.live_bytes, df.free_bytes) == (90, 0)
        assert df.record_count == 2
        df.release(b)
        assert df.record_count == 1
        assert (df.live_bytes, df.free_bytes) == (60, 30)

    def test_rejects_bad_sizes(self):
        df = DataFile(page_size=100)
        with pytest.raises(ValueError):
            df.append("x", 0)
        with pytest.raises(ValueError):
            DataFile(page_size=0)

    def test_append_charges_write_per_new_page(self):
        io = IOCounter()
        df = DataFile(io, page_size=100)
        df.append("a", 60)
        df.append("b", 60)  # does not fit -> new page
        assert io.writes == 2

    def test_size_bytes(self):
        df = DataFile(page_size=128)
        df.append("a", 100)
        df.append("b", 100)
        assert df.size_bytes == 2 * 128


class TestPageStore:
    def test_allocate_free(self):
        store = PageStore()
        p1 = store.allocate()
        p2 = store.allocate()
        assert p1 != p2
        assert store.page_count == 2
        store.free(p1)
        assert store.page_count == 1

    def test_touch_charges_io(self):
        io = IOCounter()
        store = PageStore(io)
        p = store.allocate()
        store.touch_read(p)
        store.touch_write(p)
        assert (io.reads, io.writes) == (1, 1)

    def test_touch_unallocated_raises(self):
        store = PageStore()
        with pytest.raises(KeyError):
            store.touch_read(99)

    def test_size_bytes(self):
        store = PageStore(page_size=4096)
        store.allocate()
        store.allocate()
        assert store.size_bytes == 8192


class TestLayouts:
    def test_utree_2d_matches_paper(self):
        """Section 6.3: two CFBs are 16 values in 2-D, 24 in 3-D."""
        layout2 = utree_layout(2)
        assert layout2.leaf_entry_bytes == 16 * FLOAT_SIZE + 4 * FLOAT_SIZE + POINTER_SIZE
        layout3 = utree_layout(3)
        assert layout3.leaf_entry_bytes == 24 * FLOAT_SIZE + 6 * FLOAT_SIZE + POINTER_SIZE

    def test_upcr_matches_paper(self):
        """Section 6.3: m PCRs are 36 values at m=9 (2-D), 60 at m=10 (3-D)."""
        layout2 = upcr_layout(2, 9)
        assert layout2.inner_entry_bytes == 36 * FLOAT_SIZE + POINTER_SIZE
        layout3 = upcr_layout(3, 10)
        assert layout3.inner_entry_bytes == 60 * FLOAT_SIZE + POINTER_SIZE

    def test_utree_fanout_larger_than_upcr(self):
        ut = utree_layout(2)
        up = upcr_layout(2, 9)
        assert ut.leaf_capacity > up.leaf_capacity
        assert ut.inner_capacity > up.inner_capacity

    def test_capacity_floor_is_two(self):
        tiny = NodeLayout(leaf_entry_bytes=5000, inner_entry_bytes=5000, page_size=4096)
        assert tiny.leaf_capacity == 2

    def test_min_fill(self):
        layout = rstar_layout(2)
        assert layout.min_fill(100) == 40
        assert layout.min_fill(2) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            utree_layout(0)
        with pytest.raises(ValueError):
            upcr_layout(2, 0)

    def test_upcr_size_grows_with_catalog(self):
        assert upcr_layout(2, 12).leaf_entry_bytes > upcr_layout(2, 3).leaf_entry_bytes

    def test_record_span_pages(self):
        assert record_span_pages(1, 100) == 1
        assert record_span_pages(100, 100) == 1
        assert record_span_pages(101, 100) == 2
        assert record_span_pages(250, 100) == 3

    def test_wal_entry_bytes(self):
        assert wal_entry_bytes(0) == WAL_HEADER_BYTES
        assert wal_entry_bytes(17) == WAL_HEADER_BYTES + 17
