"""Tests for the unified query-execution layer (repro.exec).

Covers: the AccessMethod protocol across all three structures, the shared
single-query executor, the batched executor's page dedup + P_app memo,
the cost-model planner, and the update-measurement helpers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery, QueryAnswer
from repro.core.scan import SequentialScan
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.exec import (
    AccessMethod,
    BatchExecutor,
    Planner,
    QueryExecutor,
    ScanCostModel,
    execute_query,
    execute_workload,
    measure_delete_drain,
    measure_insert_build,
)
from repro.geometry.rect import Rect
from repro.storage.bufferpool import BufferPool
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion


def _objects(n: int, seed: int = 3) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0, 10_000, (n, 2))
    return [
        UncertainObject(i, UniformDensity(BallRegion(centres[i], 250.0)))
        for i in range(n)
    ]


def _workload(n: int, qs: float = 1500.0, pq: float = 0.5, seed: int = 11):
    rng = np.random.default_rng(seed)
    centres = rng.uniform(1000, 9000, (n, 2))
    return [ProbRangeQuery(Rect.from_center(c, qs / 2.0), pq) for c in centres]


@pytest.fixture(scope="module")
def objects():
    return _objects(150)


@pytest.fixture(scope="module")
def utree(objects):
    tree = UTree(2, estimator=AppearanceEstimator(n_samples=2000, seed=1))
    for obj in objects:
        tree.insert(obj)
    return tree


@pytest.fixture(scope="module")
def upcr(objects):
    tree = UPCRTree(2, estimator=AppearanceEstimator(n_samples=2000, seed=1))
    for obj in objects:
        tree.insert(obj)
    return tree


@pytest.fixture(scope="module")
def scan(objects):
    s = SequentialScan(2, estimator=AppearanceEstimator(n_samples=2000, seed=1))
    for obj in objects:
        s.insert(obj)
    return s


class TestAccessMethodProtocol:
    def test_all_structures_satisfy_protocol(self, utree, upcr, scan):
        for method in (utree, upcr, scan):
            assert isinstance(method, AccessMethod)

    def test_filter_result_accounts_every_object(self, utree, upcr, scan, objects):
        query = _workload(1)[0]
        # The scan classifies every object individually.
        filtered = scan.filter_candidates(query)
        total = len(filtered.validated) + len(filtered.candidates) + filtered.pruned
        assert total == len(objects)
        # Trees prune whole subtrees, so per-object counts only bound n.
        for method in (utree, upcr):
            filtered = method.filter_candidates(query)
            total = len(filtered.validated) + len(filtered.candidates) + filtered.pruned
            assert 0 < total <= len(objects)
            assert filtered.node_accesses > 0

    def test_filter_charges_io(self, utree):
        query = _workload(1)[0]
        before = utree.io.reads
        filtered = utree.filter_candidates(query)
        assert utree.io.reads - before == filtered.node_accesses


class TestSharedExecutor:
    def test_execute_query_matches_structure_query(self, utree, upcr, scan):
        for method in (utree, upcr, scan):
            for query in _workload(5):
                direct = method.query(query)
                via_exec = execute_query(method, query)
                assert direct.object_ids == via_exec.object_ids
                assert direct.stats.node_accesses == via_exec.stats.node_accesses
                assert direct.stats.data_page_reads == via_exec.stats.data_page_reads

    def test_structures_agree_on_answers(self, utree, upcr, scan):
        # U-tree and scan share identical CFB summaries and the same
        # refinement, so they agree exactly.  U-PCR's exact-PCR rules can
        # validate a borderline object the Monte-Carlo estimate would
        # reject (both are correct answers); allow a tiny discrepancy.
        for query in _workload(6):
            u = set(execute_query(utree, query).object_ids)
            s = set(execute_query(scan, query).object_ids)
            p = set(execute_query(upcr, query).object_ids)
            assert u == s
            assert len(u.symmetric_difference(p)) <= 2

    def test_physical_reads_match_logical_without_pool(self, utree):
        query = _workload(1)[0]
        answer = execute_query(utree, query)
        assert answer.stats.physical_reads == answer.stats.total_io
        assert answer.stats.cache_hits == 0

    def test_executor_run_aggregates(self, utree):
        workload = _workload(4)
        stats = QueryExecutor(utree).run(workload)
        assert stats.count == 4
        assert stats.avg_node_accesses > 0
        stats2 = execute_workload(utree, workload)
        assert stats2.avg_node_accesses == stats.avg_node_accesses


class TestBatchExecutor:
    def test_answers_identical_to_sequential(self, utree):
        workload = _workload(8)
        sequential = [execute_query(utree, q) for q in workload]
        batched = BatchExecutor(utree).run(workload)
        assert [a.object_ids for a in batched.answers] == [
            a.object_ids for a in sequential
        ]

    def test_logical_stats_preserved(self, utree):
        workload = _workload(8)
        sequential = [execute_query(utree, q) for q in workload]
        batched = BatchExecutor(utree).run(workload)
        for seq, bat in zip(sequential, batched.answers):
            assert bat.stats.node_accesses == seq.stats.node_accesses
            assert bat.stats.data_page_reads == seq.stats.data_page_reads

    def test_page_dedup_on_overlapping_workload(self, utree):
        workload = _workload(6) * 2  # every query repeated: full overlap
        result = BatchExecutor(utree).run(workload)
        assert result.batch.unique_data_pages < result.batch.logical_data_page_reads
        assert result.batch.data_page_fetches == result.batch.unique_data_pages
        assert result.batch.data_pages_saved > 0

    def test_dedupe_disabled_reports_no_savings(self, utree):
        workload = _workload(6) * 2
        # Memo off too: every query then fetches its own pages.
        plain = BatchExecutor(utree, dedupe_pages=False, memoize=False).run(workload)
        assert plain.batch.data_page_fetches == plain.batch.logical_data_page_reads
        assert plain.batch.data_pages_saved == 0
        # With the memo on, the repeated queries are fully memoised and
        # their pages are never fetched — savings without dedup.
        memoed = BatchExecutor(utree, dedupe_pages=False).run(workload)
        assert memoed.batch.data_page_fetches < memoed.batch.logical_data_page_reads
        assert memoed.batch.data_pages_saved > 0

    def test_per_query_physical_reads_filled(self, utree):
        # Uncached tree: each query's filter charges its node accesses
        # physically; phase-2 shared fetches are batch-level only.
        workload = _workload(6)
        result = BatchExecutor(utree).run(workload)
        assert result.workload.total_physical_reads == sum(
            q.node_accesses for q in result.workload.queries
        )
        assert result.batch.physical_reads == (
            result.workload.total_physical_reads + result.batch.data_page_fetches
        )
        # With dedupe off, refinement reads are attributed per query too.
        undeduped = BatchExecutor(utree, dedupe_pages=False).run(workload)
        assert undeduped.workload.total_physical_reads == sum(
            q.node_accesses + q.data_page_reads for q in undeduped.workload.queries
        )

    def test_memo_hits_on_repeated_rectangles(self, utree):
        workload = _workload(6)
        executor = BatchExecutor(utree)
        first = executor.run(workload)
        assert first.batch.memo_hits == 0  # distinct rectangles, cold memo
        second = executor.run(workload)
        assert second.batch.memo_hits == first.batch.prob_computations
        assert second.batch.prob_computations == 0
        assert [a.object_ids for a in second.answers] == [
            a.object_ids for a in first.answers
        ]

    def test_memo_spans_threshold_sweep(self, utree):
        # The Fig. 10 access pattern: one set of rectangles swept across
        # thresholds.  Candidate sets at nearby thresholds overlap, so a
        # persistent memo computes strictly fewer P_apps than a memo-less
        # executor over the whole sweep — with identical answers.
        base = _workload(8)
        thresholds = (0.3, 0.45, 0.6, 0.75, 0.9)
        memo_exec = BatchExecutor(utree)
        plain_exec = BatchExecutor(utree, memoize=False)
        memo_computed = plain_computed = memo_hits = 0
        for pq in thresholds:
            swept = [ProbRangeQuery(q.rect, pq) for q in base]
            with_memo = memo_exec.run(swept)
            without = plain_exec.run(swept)
            memo_computed += with_memo.batch.prob_computations
            memo_hits += with_memo.batch.memo_hits
            plain_computed += without.batch.prob_computations
            assert [a.object_ids for a in with_memo.answers] == [
                a.object_ids for a in without.answers
            ]
        assert memo_hits > 0
        assert memo_computed < plain_computed
        assert memo_computed + memo_hits == plain_computed

    def test_memoize_disabled(self, utree):
        workload = _workload(4) * 2
        result = BatchExecutor(utree, memoize=False).run(workload)
        assert result.batch.memo_hits == 0
        assert result.batch.prob_computations > 0

    def test_clear_memo(self, utree):
        executor = BatchExecutor(utree)
        executor.run(_workload(4))
        assert executor.memo_size > 0
        executor.clear_memo()
        assert executor.memo_size == 0

    def test_works_for_scan_and_upcr(self, upcr, scan):
        workload = _workload(4)
        for method in (upcr, scan):
            expected = [execute_query(method, q).object_ids for q in workload]
            result = BatchExecutor(method).run(workload)
            assert [a.object_ids for a in result.answers] == expected


class TestBatchWithBufferPool:
    def test_warm_pool_eliminates_physical_rereads(self):
        objects = _objects(150)
        pool = BufferPool(1024)
        tree = UTree(2, pool=pool, estimator=AppearanceEstimator(n_samples=2000, seed=1))
        for obj in objects:
            tree.insert(obj)
        pool.clear()  # cold cache: drop frames admitted during the build
        workload = _workload(6) * 2
        tree.io.reset()
        result = BatchExecutor(tree).run(workload)
        assert result.batch.cache_hits > 0
        logical = sum(q.total_io for q in result.workload.queries)
        assert result.batch.physical_reads < logical
        # Second identical batch: everything is resident, zero disk reads.
        tree.io.reset()
        again = BatchExecutor(tree).run(workload)
        assert again.batch.physical_reads == 0
        assert again.batch.cache_hits > 0


class TestPlanner:
    def test_plan_picks_cheapest(self, utree, scan):
        planner = Planner()
        planner.register("a", utree, lambda q: 10.0)
        planner.register("b", scan, lambda q: 5.0)
        decision = planner.plan(_workload(1)[0])
        assert decision.choice == "b"
        assert decision.estimates == {"a": 10.0, "b": 5.0}

    def test_duplicate_registration_rejected(self, utree):
        planner = Planner()
        planner.register("a", utree, lambda q: 1.0)
        with pytest.raises(ValueError):
            planner.register("a", utree, lambda q: 2.0)

    def test_empty_planner_rejected(self, utree):
        with pytest.raises(RuntimeError):
            Planner().plan(_workload(1)[0])
        with pytest.raises(ValueError):
            Planner.for_structures()

    def test_for_structures_selective_queries_prefer_tree(self, utree, scan):
        planner = Planner.for_structures(utree=utree, scan=scan, data_records_per_page=40)
        report = planner.run(_workload(6, qs=800.0))
        assert report.choice_counts().get("utree", 0) == 6

    def test_planned_answers_match_direct_execution(self, utree, upcr, scan):
        planner = Planner.for_structures(
            utree=utree, upcr=upcr, scan=scan, data_records_per_page=40
        )
        for query in _workload(5):
            answer, decision = planner.execute(query)
            direct = execute_query(planner[decision.choice], query)
            assert answer.object_ids == direct.object_ids

    def test_scan_cost_model_prices_scan_constant_plus_refinement(self, scan):
        model = ScanCostModel(scan)
        small = _workload(1, qs=200.0)[0]
        large = _workload(1, qs=8000.0)[0]
        assert model.total_io(small) >= scan.scan_pages
        assert model.total_io(large) > model.total_io(small)

    def test_report_aggregates(self, utree, scan):
        planner = Planner.for_structures(utree=utree, scan=scan, data_records_per_page=40)
        report = planner.run(_workload(4))
        assert report.workload.count == 4
        assert len(report.decisions) == len(report.answers) == 4


class TestPlannerCalibration:
    def test_default_records_per_page_derived_from_data_file(self, utree, scan):
        planner = Planner.for_structures(utree=utree, scan=scan)
        # Derived from actual first-fit occupancy, not the 1.0 placeholder.
        assert planner.data_records_per_page == pytest.approx(
            utree.data_file.records_per_page
        )
        assert planner.data_records_per_page > 1.0

    def test_layout_formula_matches_object_detail_size(self):
        from repro.storage import layout

        # detail_record_bytes must stay in sync with the object model at
        # every dimensionality the planner might price.
        for dim in (1, 2, 3, 5):
            obj = UncertainObject(
                0, UniformDensity(BallRegion(np.full(dim, 5000.0), 100.0))
            )
            assert layout.detail_record_bytes(dim) == obj.detail_size_bytes()
            assert layout.data_records_per_page(dim) >= 1

    def test_empty_structure_falls_back_to_layout(self):
        from repro.storage import layout

        scan = SequentialScan(2, estimator=AppearanceEstimator(n_samples=500, seed=1))
        planner = Planner.for_structures(scan=scan)
        assert planner.data_records_per_page == float(
            layout.data_records_per_page(2, scan.data_file.page_size)
        )

    def test_observe_refines_constant(self, utree):
        planner = Planner.for_structures(utree=utree, data_records_per_page=1.0)
        report = planner.run(_workload(6))
        # run() auto-observes: candidates share pages, so the constant
        # must have moved up from the deliberately wrong prior.
        assert planner.observations >= 1
        assert planner.data_records_per_page > 1.0
        # Manual observe keeps refining with EWMA blending.
        before = planner.data_records_per_page
        after = planner.observe(report.workload, smoothing=1.0)
        pages = sum(q.data_page_reads for q in report.workload.queries)
        candidates = sum(
            q.prob_computations + q.memoized_probs for q in report.workload.queries
        )
        assert after == pytest.approx(candidates / pages)
        assert after != before or planner.observations >= 2

    def test_observe_ignores_empty_workload(self, utree):
        from repro.core.stats import WorkloadStats

        planner = Planner.for_structures(utree=utree, data_records_per_page=7.0)
        assert planner.observe(WorkloadStats()) == 7.0
        assert planner.observations == 0

    def test_auto_observe_opt_out_pins_constant(self, utree):
        planner = Planner.for_structures(
            utree=utree, data_records_per_page=8.0, auto_observe=False
        )
        planner.run(_workload(4))
        assert planner.data_records_per_page == 8.0  # pinned: no drift
        assert planner.observations == 0
        planner.observe(planner.run(_workload(4)).workload)  # explicit works
        assert planner.observations == 1

    def test_validation(self, utree):
        from repro.core.stats import WorkloadStats

        with pytest.raises(ValueError):
            Planner(data_records_per_page=0.0)
        planner = Planner.for_structures(utree=utree)
        with pytest.raises(ValueError):
            planner.observe(WorkloadStats(), smoothing=0.0)


class TestUpdateMeasurement:
    def test_insert_build_and_delete_drain(self):
        objects = _objects(40, seed=9)
        tree = UTree(2)
        costs = measure_insert_build(tree, objects)
        assert len(costs) == len(objects)
        assert len(tree) == len(objects)
        assert all(c.io_writes > 0 for c in costs)
        drain = measure_delete_drain(
            tree, [o.oid for o in objects], np.random.default_rng(4)
        )
        assert len(drain) == len(objects)
        assert len(tree) == 0

    def test_delete_drain_raises_on_missing_oid(self):
        objects = _objects(10, seed=9)
        tree = UTree(2)
        measure_insert_build(tree, objects)
        with pytest.raises(KeyError):
            measure_delete_drain(tree, [999_999], np.random.default_rng(0))


class TestQueryAnswerContains:
    def test_membership_tracks_appends(self):
        answer = QueryAnswer()
        answer.object_ids.append(1)
        assert 1 in answer
        assert 2 not in answer
        answer.object_ids.append(2)  # cache must refresh on growth
        assert 2 in answer
        assert 1 in answer
