"""Tests for the vectorized filter-phase kernel.

The load-bearing contract: every verdict the columnar kernel produces is
**bit-identical** (``==``, never ``approx``) to the scalar rule engines —
:class:`PCRRules` over exact PCRs and :class:`CFBRules` over CFB
summaries — across every pdf family, both dimensionalities, both catalog
sizes, degenerate (point) PCRs, update churn and shard-routed batches.
``filter_kernel="off"`` must reproduce the scalar path *exactly*,
including node-access accounting; ``"on"`` must match it anyway.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.cfb import fit_cfbs
from repro.core.filterkernel import (
    CFBFilterKernel,
    PCRFilterKernel,
    VERDICT_BY_CODE,
    resolve_filter_kernel,
)
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.pcr import PCRSet, compute_pcrs
from repro.core.pruning import CFBRules, PCRRules
from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.exec.shard import ShardedAccessMethod
from repro.geometry.rect import Rect
from repro.storage.layout import filter_kernel_row_bytes
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion

# Thresholds spanning every rule arm: deep in the Rule-2/5 regime, the
# 0.5 boundary (exactly representable, so the > 0.5 branch flips on
# either side of it), the Rule-1/4 regime and the extremes.
THRESHOLDS = (0.03, 0.25, 0.45, 0.5, 0.51, 0.6, 0.75, 0.9, 0.97, 1.0)

CATALOGS = {
    "utree-m15": UCatalog.paper_utree_default(),
    "upcr-m9": UCatalog.evenly_spaced(9),
}


def _box(center, half) -> BoxRegion:
    return BoxRegion(Rect.from_center(np.asarray(center, dtype=float), half))


def _family_objects(dim: int, seed: int, n_rounds: int = 2) -> list[UncertainObject]:
    """All five pdf families over both region shapes, at the given dim."""
    rng = np.random.default_rng(seed)
    objs: list[UncertainObject] = []
    oid = 0

    def centre():
        return rng.uniform(2000, 8000, dim)

    for _ in range(n_rounds):
        objs.append(UncertainObject(oid, UniformDensity(BallRegion(centre(), 260.0))))
        oid += 1
        objs.append(UncertainObject(oid, UniformDensity(_box(centre(), 240.0))))
        oid += 1
        objs.append(
            UncertainObject(
                oid, ConstrainedGaussianDensity(BallRegion(centre(), 260.0), sigma=120.0)
            )
        )
        oid += 1
        objs.append(
            UncertainObject(
                oid, zipf_histogram(_box(centre(), 250.0), 6, skew=1.1, seed=oid)
            )
        )
        oid += 1
        objs.append(
            UncertainObject(
                oid,
                RadialExponentialDensity(BallRegion(centre(), 250.0), scale=90.0),
            )
        )
        oid += 1
        region = _box(centre(), 230.0)
        objs.append(
            UncertainObject(
                oid,
                MixtureDensity(
                    [
                        UniformDensity(region),
                        ConstrainedGaussianDensity(region, sigma=90.0),
                    ],
                    weights=[0.4, 0.6],
                ),
            )
        )
        oid += 1
    return objs


def _query_rects(dim: int, seed: int, n: int = 24) -> list[Rect]:
    """Partial overlaps at every size plus containing/disjoint extremes."""
    rng = np.random.default_rng(seed)
    rects = [
        Rect.from_center(rng.uniform(1500, 8500, dim), float(rng.uniform(80, 2500)))
        for _ in range(n)
    ]
    rects.append(Rect(np.zeros(dim), np.full(dim, 10_000.0)))
    rects.append(Rect(np.full(dim, 90_000.0), np.full(dim, 91_000.0)))
    return rects


def _assert_filter_equal(a, b):
    assert a.validated == b.validated
    assert a.candidates == b.candidates
    assert a.pruned == b.pruned
    assert a.node_accesses == b.node_accesses


class TestKernelVsScalarRules:
    """Raw kernel verdicts == the scalar rule engines, bit for bit."""

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("catalog_name", sorted(CATALOGS))
    def test_pcr_kernel_matches_pcrrules(self, dim, catalog_name):
        catalog = CATALOGS[catalog_name]
        objs = _family_objects(dim, seed=11 + dim)
        kernel = PCRFilterKernel(catalog, dim)
        rules, rows = [], []
        for obj in objs:
            pcrs = compute_pcrs(obj, catalog)
            rules.append(PCRRules(pcrs))
            rows.append(kernel.add(pcrs))
        for rect in _query_rects(dim, seed=29 + dim):
            query = Rect(rect.lo, rect.hi)
            for pq in THRESHOLDS:
                codes = kernel.classify(query, pq, rows)
                for i, rule in enumerate(rules):
                    assert VERDICT_BY_CODE[codes[i]] is rule.apply(query, pq)

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("catalog_name", sorted(CATALOGS))
    def test_cfb_kernel_matches_cfbrules(self, dim, catalog_name):
        catalog = CATALOGS[catalog_name]
        objs = _family_objects(dim, seed=41 + dim)
        kernel = CFBFilterKernel(catalog, dim)
        rules, rows = [], []
        for obj in objs:
            pcrs = compute_pcrs(obj, catalog)
            outer, inner = fit_cfbs(pcrs)
            rules.append(CFBRules(catalog, outer, inner))
            rows.append(kernel.add(obj.mbr, outer, inner))
        for rect in _query_rects(dim, seed=53 + dim):
            for pq in THRESHOLDS:
                codes = kernel.classify(rect, pq, rows)
                for i, (obj, rule) in enumerate(zip(objs, rules)):
                    assert VERDICT_BY_CODE[codes[i]] is rule.apply(obj.mbr, rect, pq)

    def test_degenerate_point_pcrs(self):
        """PCRs collapsed to a point (every plane equal) classify identically."""
        catalog = UCatalog.evenly_spaced(9)  # includes 0.5: pcr(0.5) is a point
        rng = np.random.default_rng(7)
        kernel = PCRFilterKernel(catalog, 2)
        rules, rows = [], []
        for _ in range(8):
            point = rng.uniform(1000, 9000, 2)
            boxes = np.broadcast_to(
                point, (catalog.size, 2, 2)
            ).copy()  # every layer: lo == hi == point
            pcrs = PCRSet(catalog, boxes, Rect.from_point(point))
            rules.append(PCRRules(pcrs))
            rows.append(kernel.add(pcrs))
        for rect in _query_rects(2, seed=61, n=16):
            for pq in THRESHOLDS:
                codes = kernel.classify(rect, pq, rows)
                for i, rule in enumerate(rules):
                    assert VERDICT_BY_CODE[codes[i]] is rule.apply(rect, pq)

    def test_empty_batch_and_bad_threshold(self):
        catalog = UCatalog.paper_utree_default()
        kernel = CFBFilterKernel(catalog, 2)
        query = Rect([0.0, 0.0], [1.0, 1.0])
        assert kernel.classify(query, 0.5, []).size == 0
        with pytest.raises(ValueError):
            kernel.classify(query, 0.0, [])
        with pytest.raises(ValueError):
            kernel.classify(query, 1.5, [])

    def test_row_accounting(self):
        catalog = UCatalog.paper_utree_default()
        kernel = PCRFilterKernel(catalog, 2)
        obj = _family_objects(2, seed=3, n_rounds=1)[0]
        row = kernel.add(compute_pcrs(obj, catalog))
        assert len(kernel) == 1
        assert kernel.size_bytes == kernel.row_count * filter_kernel_row_bytes(
            2, catalog.size
        )
        kernel.release(row)
        assert len(kernel) == 0
        assert kernel.add(compute_pcrs(obj, catalog)) == row  # slot reused
        with pytest.raises(IndexError):
            kernel.release(999)


class TestStructureEquivalence:
    """filter_kernel="on" == filter_kernel="off" through every structure."""

    @pytest.fixture(scope="class")
    def objects(self):
        return _family_objects(2, seed=97, n_rounds=3)

    def _pair(self, factory, objects):
        on = factory("on")
        off = factory("off")
        for obj in objects:
            on.insert(obj)
            off.insert(obj)
        return on, off

    @pytest.mark.parametrize("structure", ["utree", "upcr", "scan"])
    def test_filter_results_identical(self, structure, objects):
        est = lambda: AppearanceEstimator(n_samples=600, seed=5)  # noqa: E731
        factories = {
            "utree": lambda mode: UTree(2, estimator=est(), filter_kernel=mode),
            "upcr": lambda mode: UPCRTree(2, estimator=est(), filter_kernel=mode),
            "scan": lambda mode: SequentialScan(2, estimator=est(), filter_kernel=mode),
        }
        on, off = self._pair(factories[structure], objects)
        assert on.kernel is not None and off.kernel is None
        rng = np.random.default_rng(71)
        for trial in range(20):
            rect = Rect.from_center(
                rng.uniform(1500, 8500, 2), float(rng.uniform(100, 2200))
            )
            pq = float(rng.choice(THRESHOLDS))
            query = ProbRangeQuery(rect, pq)
            _assert_filter_equal(
                on.filter_candidates(query), off.filter_candidates(query)
            )
            # End-to-end answers too (shared refinement is already pinned
            # elsewhere; this guards the wiring).
            assert on.query(query).object_ids == off.query(query).object_ids

    def test_update_churn_keeps_equivalence(self, objects):
        """Delete + re-insert reuses sidecar rows without stale verdicts."""
        on = UTree(2, estimator=AppearanceEstimator(n_samples=400, seed=5),
                   filter_kernel="on")
        off = UTree(2, estimator=AppearanceEstimator(n_samples=400, seed=5),
                    filter_kernel="off")
        for obj in objects:
            on.insert(obj)
            off.insert(obj)
        rng = np.random.default_rng(83)
        dropped = [obj.oid for obj in objects[::3]]
        for oid in dropped:
            assert on.delete(oid) is not None
            assert off.delete(oid) is not None
        fresh = _family_objects(2, seed=113, n_rounds=1)
        for obj in fresh:
            obj.oid += 10_000  # new generation, fresh ids
            on.insert(obj)
            off.insert(obj)
        for _ in range(12):
            query = ProbRangeQuery(
                Rect.from_center(rng.uniform(1500, 8500, 2), float(rng.uniform(150, 2000))),
                float(rng.choice(THRESHOLDS)),
            )
            _assert_filter_equal(
                on.filter_candidates(query), off.filter_candidates(query)
            )

    def test_bulk_load_matches_inserts(self, objects):
        loaded = UTree.bulk_load(
            objects, estimator=AppearanceEstimator(n_samples=400, seed=5),
            filter_kernel="on",
        )
        scalar = UTree.bulk_load(
            objects, estimator=AppearanceEstimator(n_samples=400, seed=5),
            filter_kernel="off",
        )
        rng = np.random.default_rng(19)
        for _ in range(10):
            query = ProbRangeQuery(
                Rect.from_center(rng.uniform(1500, 8500, 2), float(rng.uniform(150, 2000))),
                float(rng.choice(THRESHOLDS)),
            )
            _assert_filter_equal(
                loaded.filter_candidates(query), scalar.filter_candidates(query)
            )

    def test_sharded_batches(self, objects):
        """Shard-routed probes: one kernel call per probe, identical merges."""
        est = AppearanceEstimator(n_samples=400, seed=5)
        for partitioner in ("str", "hash"):
            on = ShardedAccessMethod.build(
                objects, shards=4, partitioner=partitioner, estimator=est,
                filter_kernel="on",
            )
            off = ShardedAccessMethod.build(
                objects, shards=4, partitioner=partitioner, estimator=est,
                filter_kernel="off",
            )
            assert all(shard.kernel is not None for shard in on.shards)
            assert all(shard.kernel is None for shard in off.shards)
            rng = np.random.default_rng(29)
            for _ in range(10):
                query = ProbRangeQuery(
                    Rect.from_center(
                        rng.uniform(1500, 8500, 2), float(rng.uniform(150, 2000))
                    ),
                    float(rng.choice(THRESHOLDS)),
                )
                a = on.filter_candidates(query)
                b = off.filter_candidates(query)
                _assert_filter_equal(a, b)
                assert a.shard_probes == b.shard_probes
                assert a.shards_pruned == b.shards_pruned

    def test_nn_walk_identical(self, objects):
        on = UTree(2, filter_kernel="on")
        off = UTree(2, filter_kernel="off")
        for obj in objects:
            on.insert(obj)
            off.insert(obj)
        rng = np.random.default_rng(37)
        for _ in range(10):
            point = rng.uniform(500, 9500, 2)
            a = probabilistic_nearest_neighbors(on, point, rounds=300)
            b = probabilistic_nearest_neighbors(off, point, rounds=300)
            assert a.node_accesses == b.node_accesses
            assert a.objects_examined == b.objects_examined
            assert [
                (c.oid, c.probability, c.expected_distance) for c in a.candidates
            ] == [(c.oid, c.probability, c.expected_distance) for c in b.candidates]


class TestKnobResolution:
    def test_resolve_values(self):
        assert resolve_filter_kernel("on") is True
        assert resolve_filter_kernel("OFF") is False
        assert resolve_filter_kernel(True) is True
        assert resolve_filter_kernel(False) is False
        with pytest.raises(ValueError):
            resolve_filter_kernel("sideways")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FILTER_KERNEL", raising=False)
        assert resolve_filter_kernel(None) is True
        assert UTree(2).kernel is not None
        monkeypatch.setenv("REPRO_FILTER_KERNEL", "off")
        assert resolve_filter_kernel(None) is False
        assert UTree(2).kernel is None
        assert SequentialScan(2).kernel is None
        # An explicit knob beats the environment.
        assert UTree(2, filter_kernel="on").kernel is not None


class TestSerializationRoundTrip:
    def test_kernel_survives_save_load(self, tmp_path, monkeypatch):
        # The archive flag only decides when neither the caller nor the
        # environment overrides it; pin the env so the round-trip is
        # deterministic under the CI scalar-filter leg too.
        monkeypatch.delenv("REPRO_FILTER_KERNEL", raising=False)
        objects = _family_objects(2, seed=131, n_rounds=2)
        # Histogram-family objects round-trip; the zoo is built from
        # serialisable families only.
        tree = UTree(2, filter_kernel="on")
        for obj in objects:
            tree.insert(obj)
        from repro.storage.serialize import load_utree, save_utree

        path = tmp_path / "tree.npz"
        save_utree(tree, path)
        loaded = load_utree(path)
        assert loaded.kernel is not None
        scalar = load_utree(path, filter_kernel="off")
        assert scalar.kernel is None
        rng = np.random.default_rng(43)
        for _ in range(10):
            query = ProbRangeQuery(
                Rect.from_center(rng.uniform(1500, 8500, 2), float(rng.uniform(150, 2000))),
                float(rng.choice(THRESHOLDS)),
            )
            _assert_filter_equal(
                loaded.filter_candidates(query), scalar.filter_candidates(query)
            )
            assert (
                loaded.query(query).sorted_ids() == scalar.query(query).sorted_ids()
            )
