"""Chaos suite for the resilient execution runtime (PR 9).

The resilience contract: a fault mid-batch — a worker killed or hung, a
page whose checksum no longer matches, a flaky read — changes *when* and
*where* the batch executes, never *what it answers*.  Every test here
injects a fault and asserts the surviving answers (ids and appearance
probabilities) are bit-identical to a fault-free run, with the absorbed
damage surfaced in ``BatchStats`` (retries, respawns, scrubs, the
degradation level) rather than hidden.

Layers under test:

* worker supervision inside :class:`ProcessBatchExecutor` — deadline +
  liveness detection, respawn-and-retry of only the failed fault
  domain, pool teardown on unrecoverable errors (the executor and the
  owning :class:`Database` stay usable afterwards);
* the storage integrity gate — crc32 shadow checksums, quarantine/scrub
  of corrupt pages, bounded retry of transient ``OSError`` reads;
* the graceful-degradation ladder (``process -> thread -> serial``)
  that :class:`Database` walks under ``on_fault="degrade"``;
* the off-switch: every knob at its default must leave behaviour and
  counters byte-identical to the pre-resilience engine.

Injectors live in :mod:`tests.faultinject` (worker kill, armed
exit/hang through the worker pipe protocol, flaky reads).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import Database, ExecConfig, RangeSpec
from repro.exec import (
    BatchExecutor,
    BatchSupervisor,
    ProcessBatchExecutor,
)
from repro.faults import (
    CorruptPageError,
    DegradedWarning,
    FaultError,
    TransientIOError,
    WorkerError,
    WorkerTimeout,
)
from repro.geometry.rect import Rect
from repro.storage.layout import PAGE_CHECKSUM_BYTES, usable_page_bytes
from repro.storage.pager import DataFile, DataFileView, IOCounter
from tests.conftest import make_mixed_objects
from tests.faultinject import FlakyReads, arm_chaos, kill_worker

MC_SAMPLES = 200
SEED = 7
N_OBJECTS = 40

METHODS = ("utree", "upcr", "scan")
KERNELS = ("on", "off")
SHARD_COUNTS = (1, 4)


def _objects():
    return make_mixed_objects(N_OBJECTS, seed=11)


def _specs(n: int = 6):
    rng = np.random.default_rng(23)
    return [
        RangeSpec(
            Rect.from_center(rng.uniform(1500, 8500, 2), float(rng.uniform(900, 1800))),
            float(rng.choice([0.3, 0.5])),
        )
        for _ in range(n)
    ]


def _config(**overrides) -> ExecConfig:
    base = dict(mc_samples=MC_SAMPLES, seed=SEED, page_size=2048)
    base.update(overrides)
    return ExecConfig(**base)


def _db(**overrides) -> Database:
    return Database.create(_objects(), _config(**overrides))


def _ids_and_probs(run_result):
    """The answer identity: object ids plus the P_app evaluation count.

    Ids are the visible contract; ``prob_computations`` pins that they
    came from the same appearance-probability evaluations (a degraded
    path silently recomputing — or skipping — P_app would show here).
    """
    return [
        (r.object_ids, r.stats.prob_computations) for r in run_result.results
    ]


@pytest.fixture(scope="module")
def fault_free():
    """One fault-free serial reference answer set for the whole module."""
    db = _db()
    out = db.run(_specs())
    yield _ids_and_probs(out)
    db.close()


# ----------------------------------------------------------------------
# taxonomy
# ----------------------------------------------------------------------

class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(TransientIOError, FaultError)
        assert issubclass(CorruptPageError, FaultError)
        assert issubclass(WorkerError, FaultError)
        assert issubclass(WorkerTimeout, WorkerError)
        # Seed compat: pre-PR 9 callers caught RuntimeError from the pool.
        assert issubclass(FaultError, RuntimeError)
        assert issubclass(DegradedWarning, RuntimeWarning)

    def test_exec_reexports_are_the_same_classes(self):
        import repro.exec as E
        import repro.exec.resilience as R
        import repro.faults as F

        for name in (
            "FaultError",
            "TransientIOError",
            "CorruptPageError",
            "WorkerError",
            "WorkerTimeout",
            "DegradedWarning",
        ):
            assert getattr(E, name) is getattr(F, name)
            assert getattr(R, name) is getattr(F, name)

    def test_payload_attributes(self):
        exc = TransientIOError("x", page_id=4, attempts=3)
        assert (exc.page_id, exc.attempts) == (4, 3)
        assert CorruptPageError("y", page_id=9).page_id == 9


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------

class TestConfigKnobs:
    def test_defaults_are_off(self):
        cfg = ExecConfig()
        assert cfg.on_fault == "fail"
        assert cfg.worker_timeout == 0.0
        assert cfg.max_retries == 2
        assert cfg.checksum is False

    def test_validation(self):
        with pytest.raises(ValueError, match="on_fault"):
            ExecConfig(on_fault="panic")
        with pytest.raises(ValueError, match="worker_timeout"):
            ExecConfig(worker_timeout=-1.0)
        with pytest.raises(ValueError, match="max_retries"):
            ExecConfig(max_retries=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ON_FAULT", "degrade")
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_CHECKSUM", "on")
        cfg = ExecConfig.from_env()
        assert cfg.on_fault == "degrade"
        assert cfg.worker_timeout == 1.5
        assert cfg.max_retries == 5
        assert cfg.checksum is True


# ----------------------------------------------------------------------
# storage integrity: checksums, scrubbing, flaky reads
# ----------------------------------------------------------------------

class TestStorageIntegrity:
    def test_layout_accounting(self):
        assert usable_page_bytes(4096) == 4096
        assert usable_page_bytes(4096, checksum=True) == 4096 - PAGE_CHECKSUM_BYTES
        with pytest.raises(ValueError):
            usable_page_bytes(PAGE_CHECKSUM_BYTES, checksum=True)

    def test_checksum_off_is_inert(self):
        df = DataFile(IOCounter(), 2048)
        addrs = [df.append({"i": i}, 300) for i in range(12)]
        for a in addrs:
            df.read(a)
        assert df.usable_page_bytes == 2048
        assert all(p.image is None for p in df._pages)
        assert df.corrupt_pages_detected == 0
        assert df.pages_scrubbed == 0
        assert df.transient_retries == 0

    def test_corruption_detected_and_raised(self):
        df = DataFile(IOCounter(), 2048, checksum=True)
        addrs = [df.append({"i": i}, 300) for i in range(12)]
        # 300-byte records pack 6 per 2044-byte page: addrs[8] is page 1.
        assert addrs[8].page_id != addrs[0].page_id
        df.corrupt_page(addrs[8].page_id)
        with pytest.raises(CorruptPageError) as info:
            df.read(addrs[8])
        assert info.value.page_id == addrs[8].page_id
        assert df.corrupt_pages_detected == 1
        # Untouched pages still read clean.
        assert df.read(addrs[0]) == {"i": 0}

    def test_scrub_repairs_with_warning_and_charged_read(self):
        df = DataFile(IOCounter(), 2048, checksum=True)
        addrs = [df.append({"i": i}, 300) for i in range(12)]
        df.scrub = True
        df.corrupt_page(addrs[5].page_id)
        reads_before = df.io.reads
        with pytest.warns(DegradedWarning):
            assert df.read(addrs[5]) == {"i": 5}
        # The repair charges one extra physical read on top of the
        # normal access — scrubbing is not free I/O.
        assert df.io.reads == reads_before + 2
        assert df.pages_scrubbed == 1
        # Second read: page is healthy again, no warning, normal cost.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert df.read(addrs[5]) == {"i": 5}
        assert df.pages_scrubbed == 1

    def test_enable_checksum_is_idempotent_and_retrofits(self):
        df = DataFile(IOCounter(), 2048)
        addrs = [df.append({"i": i}, 300) for i in range(8)]
        df.enable_checksum()
        df.enable_checksum()
        assert df.checksum is True
        for a in addrs:
            df.read(a)  # retrofitted stamps verify clean
        df.corrupt_page(addrs[2].page_id)
        with pytest.raises(CorruptPageError):
            df.read(addrs[2])

    def test_flaky_reads_absorbed_within_budget(self):
        df = DataFile(IOCounter(), 2048, checksum=True)
        addrs = [df.append({"i": i}, 300) for i in range(8)]
        injector = FlakyReads(2)
        df.fault_injector = injector
        reads_before = df.io.reads
        assert df.read(addrs[0]) == {"i": 0}
        # Both failed attempts charged a physical read each.
        assert df.io.reads == reads_before + 3
        assert df.transient_retries == 2
        assert injector.raised == 2

    def test_flaky_reads_beyond_budget_raise(self):
        df = DataFile(IOCounter(), 2048)
        addrs = [df.append({"i": i}, 300) for i in range(8)]
        df.fault_injector = FlakyReads(99)
        with pytest.raises(TransientIOError) as info:
            df.read(addrs[0])
        assert info.value.attempts == df.io_retry_limit + 1

    def test_worker_views_never_scrub(self):
        # A forked worker repairing its copy-on-write page image would
        # silently diverge from the parent; the view fails fast instead.
        df = DataFile(IOCounter(), 2048, checksum=True)
        addrs = [df.append({"i": i}, 300) for i in range(8)]
        df.scrub = True
        df.corrupt_page(addrs[1].page_id)
        view = DataFileView(df)
        with pytest.raises(CorruptPageError):
            view.read(addrs[1])
        assert df.pages_scrubbed == 0
        # The parent itself still scrubs the same page afterwards.
        with pytest.warns(DegradedWarning):
            assert df.read(addrs[1]) == {"i": 1}
        assert df.pages_scrubbed == 1


# ----------------------------------------------------------------------
# worker supervision (executor level)
# ----------------------------------------------------------------------

def _build_method(method: str, kernel: str, shards: int):
    cfg = _config(shards=shards, filter_kernel=kernel)
    db = Database.create(_objects(), cfg, methods=(method,))
    return db, db._methods[method]


def _queries(n: int = 6):
    return [spec.to_query() for spec in _specs(n)]


class TestWorkerSupervision:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("method", METHODS)
    def test_killed_worker_matrix_answers_identical(self, method, kernel, shards):
        """The acceptance matrix: a killed worker never changes answers."""
        queries = _queries()
        _, serial_method = _build_method(method, kernel, shards)
        serial = BatchExecutor(serial_method).run(queries)
        _, proc_method = _build_method(method, kernel, shards)
        with ProcessBatchExecutor(
            proc_method, workers=3, worker_timeout=10.0, max_retries=2
        ) as ex:
            kill_worker(ex, 1)
            with pytest.warns(DegradedWarning):
                survived = ex.run(queries)
        assert [a.object_ids for a in survived.answers] == [
            a.object_ids for a in serial.answers
        ]
        assert [a.stats.prob_computations for a in survived.answers] == [
            a.stats.prob_computations for a in serial.answers
        ]
        assert survived.batch.worker_respawns >= 1
        assert survived.batch.fault_retries >= 1

    def test_exit_mid_batch_recovers(self):
        queries = _queries()
        _, serial_method = _build_method("utree", "on", 4)
        serial = BatchExecutor(serial_method).run(queries)
        _, proc_method = _build_method("utree", "on", 4)
        with ProcessBatchExecutor(
            proc_method, workers=3, worker_timeout=10.0, max_retries=2
        ) as ex:
            ex._ensure_pool()
            arm_chaos(ex, 0, "exit")
            with pytest.warns(DegradedWarning):
                survived = ex.run(queries)
        assert [a.object_ids for a in survived.answers] == [
            a.object_ids for a in serial.answers
        ]
        assert survived.batch.worker_respawns == 1

    def test_hang_trips_deadline_and_recovers(self):
        queries = _queries()
        _, serial_method = _build_method("utree", "on", 1)
        serial = BatchExecutor(serial_method).run(queries)
        _, proc_method = _build_method("utree", "on", 1)
        with ProcessBatchExecutor(
            proc_method, workers=2, worker_timeout=0.5, max_retries=1
        ) as ex:
            ex._ensure_pool()
            arm_chaos(ex, 1, "hang", 30.0)
            with pytest.warns(DegradedWarning):
                survived = ex.run(queries)
        assert [a.object_ids for a in survived.answers] == [
            a.object_ids for a in serial.answers
        ]
        assert survived.batch.worker_respawns == 1
        assert survived.batch.fault_retries == 1

    def test_retry_budget_exhausted_raises_worker_error(self):
        _, proc_method = _build_method("utree", "on", 1)
        ex = ProcessBatchExecutor(
            proc_method, workers=2, worker_timeout=10.0, max_retries=0
        )
        try:
            ex._ensure_pool()
            arm_chaos(ex, 0, "exit")
            with pytest.raises(WorkerError, match="retry budget 0 exhausted"):
                ex.run(_queries())
            # The pool was torn down before the raise.
            assert ex._procs == []
        finally:
            ex.close()

    def test_all_hung_budget_exhausted_raises_worker_timeout(self):
        _, proc_method = _build_method("utree", "on", 1)
        ex = ProcessBatchExecutor(
            proc_method, workers=1, worker_timeout=0.3, max_retries=0
        )
        try:
            ex._ensure_pool()
            arm_chaos(ex, 0, "hang", 30.0)
            with pytest.raises(WorkerTimeout):
                ex.run(_queries(3))
            assert ex._procs == []
        finally:
            ex.close()

    def test_second_fault_on_retry_consumes_budget(self):
        # Budget 2: first retry's replacement dies too, second succeeds.
        queries = _queries()
        _, serial_method = _build_method("utree", "on", 1)
        serial = BatchExecutor(serial_method).run(queries)
        _, proc_method = _build_method("utree", "on", 1)
        with ProcessBatchExecutor(
            proc_method, workers=2, worker_timeout=10.0, max_retries=2
        ) as ex:
            ex._ensure_pool()
            arm_chaos(ex, 0, "exit")
            kill_worker(ex, 1)
            with pytest.warns(DegradedWarning):
                survived = ex.run(queries)
        assert [a.object_ids for a in survived.answers] == [
            a.object_ids for a in serial.answers
        ]
        assert survived.batch.worker_respawns >= 2

    def test_pool_reusable_after_failure(self):
        """Satellite 1: a failed exchange must not leave dead pipes behind."""
        queries = _queries()
        _, proc_method = _build_method("utree", "on", 1)
        with ProcessBatchExecutor(proc_method, workers=2) as ex:
            first = ex.run(queries)
            kill_worker(ex, 0)
            with pytest.raises(WorkerError):
                ex.run(queries)
            # Default (unsupervised) mode: the fault propagated, but the
            # pool was closed, so the next run re-forks cleanly.
            again = ex.run(queries)
        assert [a.object_ids for a in again.answers] == [
            a.object_ids for a in first.answers
        ]

    def test_worker_error_status_is_never_retried(self):
        # A worker replying with a traceback is a deterministic bug, not
        # a fault domain to respawn: no retries are consumed.
        _, proc_method = _build_method("utree", "on", 1)
        with ProcessBatchExecutor(
            proc_method, workers=2, worker_timeout=10.0, max_retries=3
        ) as ex:
            ex._ensure_pool()
            ex._conns[0].send(("no_such_command", None))
            status, payload = ex._conns[0].recv()
            assert status == "error"
            assert ex.retries == 0


# ----------------------------------------------------------------------
# graceful degradation (Database level)
# ----------------------------------------------------------------------

class TestGracefulDegradation:
    def test_knobs_off_batch_is_clean(self, fault_free):
        db = _db()
        out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        batch = out.batch
        assert not batch.degraded
        assert batch.degraded_to == ""
        assert batch.fault_events == []
        assert batch.fault_retries == 0
        assert batch.worker_respawns == 0
        assert batch.corrupt_pages == 0
        assert batch.pages_scrubbed == 0
        assert batch.io_retries == 0
        assert "resilience" not in batch.summary()
        db.close()

    def test_degrade_mode_fault_free_is_identical(self, fault_free):
        db = _db(
            on_fault="degrade", checksum=True, worker_timeout=5.0, parallelism=2
        )
        out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        assert not out.batch.degraded
        db.close()

    def test_respawn_absorbed_without_degradation(self, fault_free):
        db = _db(
            executor="process",
            parallelism=2,
            on_fault="degrade",
            worker_timeout=10.0,
            max_retries=1,
        )
        ex = db._batch_executor("utree")
        ex._ensure_pool()
        arm_chaos(ex, 0, "exit")
        with pytest.warns(DegradedWarning):
            out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        batch = out.batch
        assert batch.degraded_to == ""  # the process level itself survived
        assert batch.worker_respawns == 1
        assert batch.fault_retries == 1
        assert batch.degraded  # ...but the damage is still visible
        assert "resilience" in batch.summary()
        db.close()

    def test_degrades_to_thread_when_budget_exhausted(self, fault_free):
        db = _db(
            executor="process",
            parallelism=2,
            on_fault="degrade",
            worker_timeout=10.0,
            max_retries=0,
        )
        ex = db._batch_executor("utree")
        ex._ensure_pool()
        arm_chaos(ex, 0, "exit")
        with pytest.warns(DegradedWarning):
            out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        batch = out.batch
        assert batch.degraded_to == "thread"
        assert len(batch.fault_events) == 1
        assert "WorkerError" in batch.fault_events[0]
        db.close()

    def test_corrupt_page_quarantined_and_scrubbed(self, fault_free):
        db = _db(on_fault="degrade", checksum=True)
        data_file = db._methods["utree"].data_file
        data_file.corrupt_page(0)
        with pytest.warns(DegradedWarning):
            out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        batch = out.batch
        assert batch.corrupt_pages >= 1
        assert batch.pages_scrubbed >= 1
        db.close()

    def test_corrupt_page_fail_mode_raises(self):
        db = _db(checksum=True)
        data_file = db._methods["utree"].data_file
        data_file.corrupt_page(0)
        with pytest.raises(CorruptPageError):
            db.run(_specs())
        db.close()

    def test_flaky_reads_surface_in_batch_stats(self, fault_free):
        db = _db(on_fault="degrade", checksum=True)
        # Two failures stay within io_retry_limit, so the batch absorbs
        # them without even descending the ladder.
        db._methods["utree"].data_file.fault_injector = FlakyReads(2)
        out = db.run(_specs())
        assert _ids_and_probs(out) == fault_free
        assert out.batch.io_retries == 2
        db.close()

    def test_ladder_bottoms_out_and_reraises(self):
        def failing_factory():
            class Boom:
                def run(self, queries):
                    raise CorruptPageError("page 3 unrecoverable", page_id=3)

            return Boom()

        supervisor = BatchSupervisor(
            [("process", failing_factory), ("serial", failing_factory)]
        )
        with pytest.warns(DegradedWarning):
            with pytest.raises(CorruptPageError):
                supervisor.run([])

    def test_ladder_does_not_catch_programming_errors(self):
        calls = []

        def buggy_factory():
            class Buggy:
                def run(self, queries):
                    calls.append(1)
                    raise ValueError("a bug, not a fault")

            return Buggy()

        supervisor = BatchSupervisor(
            [("process", buggy_factory), ("serial", buggy_factory)]
        )
        with pytest.raises(ValueError):
            supervisor.run([])
        assert len(calls) == 1  # never re-ran the bug on the next level

    def test_explain_reports_resilience_posture(self):
        db = _db(
            executor="process",
            parallelism=2,
            on_fault="degrade",
            checksum=True,
            worker_timeout=2.0,
            max_retries=1,
        )
        explanation = db.explain(_specs()[0], batch_size=4)
        assert explanation.on_fault == "degrade"
        assert explanation.checksum is True
        assert explanation.degradation_ladder == ("process", "thread", "serial")
        assert "resilience" in explanation.summary()
        db.close()

    def test_explain_fail_mode_has_empty_ladder(self):
        db = _db()
        explanation = db.explain(_specs()[0], batch_size=4)
        assert explanation.on_fault == "fail"
        assert explanation.degradation_ladder == ()
        assert "resilience" not in explanation.summary()
        db.close()

    def test_database_survives_fail_mode_worker_death(self, fault_free):
        """Satellite 1 at the Database level: run, kill, run, run."""
        db = _db(executor="process", parallelism=2)
        first = db.run(_specs())
        assert _ids_and_probs(first) == fault_free
        ex = db._batch_executor("utree")
        kill_worker(ex, 0)
        with pytest.raises(WorkerError):
            db.run(_specs())
        again = db.run(_specs())
        assert _ids_and_probs(again) == fault_free
        db.close()


# ----------------------------------------------------------------------
# WAL + resilience chaos (satellite 3)
# ----------------------------------------------------------------------

class TestWalChaos:
    def test_worker_death_then_reopen_recovers(self, tmp_path, fault_free):
        from tests.conftest import make_uniform_ball_object

        db = _db(
            wal=True,
            executor="process",
            parallelism=2,
            on_fault="degrade",
            worker_timeout=10.0,
            max_retries=0,
        )
        archive = tmp_path / "db"
        db.save(archive)
        # A WAL-logged mutation after the checkpoint...
        new_obj = make_uniform_ball_object(900, np.array([5000.0, 5000.0]))
        db.insert(new_obj)
        # ...then a worker dies mid-batch and the run degrades.
        ex = db._batch_executor("utree")
        ex._ensure_pool()
        arm_chaos(ex, 0, "exit")
        with pytest.warns(DegradedWarning):
            out = db.run(_specs())
        assert out.batch.degraded_to == "thread"
        expected = [db.query(spec).sorted_ids() for spec in _specs()]
        db.close()

        # Recovery is the production path: replay the WAL, answers match.
        recovered = Database.open(archive)
        assert recovered.last_recovery == {"wal_entries": 1}
        assert [
            recovered.query(spec).sorted_ids() for spec in _specs()
        ] == expected
        recovered.close()
