"""Tests for the two-phase simplex solver, with scipy as the oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import LPStatus, solve_lp


class TestHandCases:
    def test_simple_max(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0 -> (1.6, 1.2)
        res = solve_lp([1, 1], a_ub=[[1, 2], [3, 1]], b_ub=[4, 6], maximize=True)
        assert res.is_optimal
        assert res.objective == pytest.approx(2.8)
        assert np.allclose(res.x, [1.6, 1.2])

    def test_simple_min(self):
        # min x + y s.t. x + y >= 2 (as -x - y <= -2), x,y >= 0
        res = solve_lp([1, 1], a_ub=[[-1, -1]], b_ub=[-2])
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_equality(self):
        res = solve_lp([1, 2], a_eq=[[1, 1]], b_eq=[3])
        assert res.is_optimal
        assert res.objective == pytest.approx(3.0)
        assert np.allclose(res.x, [3.0, 0.0])

    def test_infeasible(self):
        res = solve_lp([1], a_ub=[[1], [-1]], b_ub=[1, -3])
        assert res.status == LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = solve_lp([1], maximize=True, bounds=[(0, None)])
        assert res.status == LPStatus.UNBOUNDED

    def test_free_variable(self):
        # min x s.t. x >= -5 with x free -> -5.
        res = solve_lp([1], a_ub=[[-1]], b_ub=[5], bounds=[(None, None)])
        assert res.is_optimal
        assert res.objective == pytest.approx(-5.0)

    def test_upper_bounded_variable(self):
        res = solve_lp([-1], bounds=[(0, 7)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(7.0)

    def test_negative_lower_bound(self):
        res = solve_lp([1], bounds=[(-3, 4)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(-3.0)

    def test_upper_bound_only(self):
        # max x with x <= 2 (no lower bound) -> 2.
        res = solve_lp([1], bounds=[(None, 2)], maximize=True)
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0)

    def test_empty_bound_rejected(self):
        with pytest.raises(ValueError):
            solve_lp([1], bounds=[(2, 1)])

    def test_degenerate_constraints(self):
        # Redundant equality rows must not break phase 1.
        res = solve_lp([1, 1], a_eq=[[1, 1], [2, 2]], b_eq=[2, 4])
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_fixed_bounds(self):
        res = solve_lp([3, 1], bounds=[(2, 2), (0, None)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0)
        assert res.objective == pytest.approx(6.0)


class TestCfbShapedProblems:
    """The exact LP families the CFB fitting produces."""

    def test_outer_lower_face(self):
        ps = np.array([0.0, 0.1, 0.25, 0.4, 0.5])
        targets = np.array([0.0, 1.0, 2.5, 3.5, 4.0])
        m, total = len(ps), ps.sum()
        rows = [[1.0, p] for p in ps]
        res = solve_lp(
            [m, total], a_ub=rows, b_ub=targets, bounds=[(None, None), (0, None)],
            maximize=True,
        )
        assert res.is_optimal
        a, b = res.x
        assert np.all(a + b * ps <= targets + 1e-8)

    def test_inner_coupled(self):
        ps = np.array([0.0, 0.25, 0.5])
        lo_t = np.array([0.0, 1.0, 2.0])
        hi_t = np.array([4.0, 3.0, 2.0])
        m, total = len(ps), ps.sum()
        c = np.array([-m, -total, m, total])
        rows, rhs = [], []
        for j, p in enumerate(ps):
            rows.append([-1.0, -p, 0.0, 0.0])
            rhs.append(-lo_t[j])
            rows.append([0.0, 0.0, 1.0, p])
            rhs.append(hi_t[j])
            rows.append([1.0, p, -1.0, -p])
            rhs.append(0.0)
        res = solve_lp(
            c, a_ub=rows, b_ub=rhs,
            bounds=[(None, None), (0, None), (None, None), (None, 0)],
            maximize=True,
        )
        assert res.is_optimal
        a_lo, b_lo, a_hi, b_hi = res.x
        lo = a_lo + b_lo * ps
        hi = a_hi + b_hi * ps
        assert np.all(lo >= lo_t - 1e-8)
        assert np.all(hi <= hi_t + 1e-8)
        assert np.all(lo <= hi + 1e-8)


def _random_lp(rng, n, m):
    c = rng.uniform(-5, 5, n)
    a = rng.uniform(-5, 5, (m, n))
    # Make feasibility likely: b = A x0 + slack for a random non-negative x0.
    x0 = rng.uniform(0, 3, n)
    b = a @ x0 + rng.uniform(0.1, 3, m)
    return c, a, b


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_feasible_lps(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 8))
        c, a, b = _random_lp(rng, n, m)

        ours = solve_lp(c, a_ub=a, b_ub=b)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=[(0, None)] * n, method="highs")

        if ref.status == 0:
            assert ours.is_optimal, f"scipy optimal but we said {ours.status}"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
            # Our solution must be feasible.
            assert np.all(a @ ours.x <= b + 1e-7)
            assert np.all(ours.x >= -1e-9)
        elif ref.status == 3:
            assert ours.status == LPStatus.UNBOUNDED
        elif ref.status == 2:
            assert ours.status == LPStatus.INFEASIBLE

    @pytest.mark.parametrize("seed", range(10))
    def test_random_with_equalities(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 5))
        c, a, b = _random_lp(rng, n, int(rng.integers(1, 4)))
        x0 = rng.uniform(0, 2, n)
        a_eq = rng.uniform(-2, 2, (1, n))
        b_eq = a_eq @ x0

        ours = solve_lp(c, a_ub=a, b_ub=b, a_eq=a_eq, b_eq=b_eq)
        ref = linprog(
            c, A_ub=a, b_ub=b, A_eq=a_eq, b_eq=b_eq, bounds=[(0, None)] * n, method="highs"
        )
        if ref.status == 0:
            assert ours.is_optimal
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6, rel=1e-6)
        elif ref.status == 2:
            assert ours.status == LPStatus.INFEASIBLE

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_free_variable_lps(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 4))
        m = int(rng.integers(2, 6))
        c = rng.uniform(-3, 3, n)
        a = rng.uniform(-3, 3, (m, n))
        x0 = rng.uniform(-2, 2, n)
        b = a @ x0 + rng.uniform(0.1, 2, m)
        bounds = [(None, None)] * n

        ours = solve_lp(c, a_ub=a, b_ub=b, bounds=bounds)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=[(None, None)] * n, method="highs")
        if ref.status == 0:
            assert ours.is_optimal
            assert ours.objective == pytest.approx(ref.fun, abs=1e-5, rel=1e-5)
        elif ref.status == 3:
            assert ours.status == LPStatus.UNBOUNDED
