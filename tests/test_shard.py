"""Exact-equivalence suite for sharded query execution (repro.exec.shard).

The shard layer's contract is *observable equivalence*: for every pdf
family and both partitioners, a sharded structure returns bit-identical
answers (object sets **and** P_app values, asserted with ``==``) to the
monolithic structure over the same objects — across threshold queries,
nearest-neighbour queries, both executors and every parallelism mode.
``shards=1`` degenerates to the plain structure down to its node-access
counts; with pruning disabled the refinement phase performs identical
physical page fetches; empty and degenerate shards are legal.

``REPRO_SHARD_PARALLELISM`` adds a thread-pool parallelism level to the
parametrised executor tests (the CI matrix leg pins it to 4).
"""

from __future__ import annotations

from repro.env import env_int

import numpy as np
import pytest

from repro.core.nn import expected_nearest_neighbors, probabilistic_nearest_neighbors
from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.utree import UTree
from repro.exec import (
    AccessMethod,
    BatchExecutor,
    Planner,
    ShardedAccessMethod,
    execute_query,
    hash_partition,
    str_tile_partition,
)
from repro.geometry.rect import Rect
from repro.storage.bufferpool import BufferPool
from repro.storage.pager import CompositeIOCounter, IOCounter
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion

N_SAMPLES = 1500
FAMILIES = ("uniform", "congau", "histogram", "radial", "mixture")
PARTITIONERS = ("str", "hash")
# The thread-pool width comes through the package's single env-resolution
# point (the CI matrix leg sets REPRO_SHARD_PARALLELISM); default 4 so the
# parallel path is always exercised locally.
PARALLELISMS = tuple(sorted({1, env_int("REPRO_SHARD_PARALLELISM", 4)}))


def _estimator() -> AppearanceEstimator:
    return AppearanceEstimator(n_samples=N_SAMPLES, seed=1)


def _family_objects(family: str, n: int = 30, seed: int = 17) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        centre = rng.uniform(2500, 7500, 2)
        radius = float(rng.uniform(150, 400))
        if family == "uniform":
            pdf = UniformDensity(BallRegion(centre, radius), marginal_seed=i)
        elif family == "congau":
            pdf = ConstrainedGaussianDensity(
                BallRegion(centre, radius), sigma=radius / 2, marginal_seed=i
            )
        elif family == "histogram":
            pdf = zipf_histogram(
                BoxRegion(Rect(centre - radius, centre + radius)),
                4, skew=1.2, seed=i, marginal_seed=i,
            )
        elif family == "radial":
            pdf = RadialExponentialDensity(
                BallRegion(centre, radius), scale=radius / 3, marginal_seed=i
            )
        elif family == "mixture":
            region = BallRegion(centre, radius)
            pdf = MixtureDensity(
                [
                    UniformDensity(region, marginal_seed=i),
                    ConstrainedGaussianDensity(region, sigma=radius / 3, marginal_seed=i),
                ],
                weights=[0.5, 1.0],
                marginal_seed=i,
            )
        else:  # pragma: no cover - parametrisation guard
            raise ValueError(family)
        objects.append(UncertainObject(i, pdf))
    return objects


def _workload(n: int = 8, seed: int = 29) -> list[ProbRangeQuery]:
    """Threshold queries at varied sizes, positions and thresholds."""
    rng = np.random.default_rng(seed)
    thresholds = (0.25, 0.5, 0.8)
    return [
        ProbRangeQuery(
            Rect.from_center(rng.uniform(2500, 7500, 2), float(rng.uniform(250, 900))),
            thresholds[i % len(thresholds)],
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def registry():
    """Per-module cache of built structures (builds dominate runtime)."""
    return {}


def _mono(registry, family: str) -> UTree:
    key = ("mono", family)
    if key not in registry:
        tree = UTree(2, estimator=_estimator())
        for obj in _family_objects(family):
            tree.insert(obj)
        registry[key] = tree
    return registry[key]


def _sharded(
    registry, family: str, partitioner: str, shards: int = 3
) -> ShardedAccessMethod:
    key = ("sharded", family, partitioner, shards)
    if key not in registry:
        registry[key] = ShardedAccessMethod.build(
            _family_objects(family),
            shards=shards,
            partitioner=partitioner,
            estimator=_estimator(),
        )
    sharded = registry[key]
    sharded.prune = True  # tests toggle this; reset to the default
    return sharded


class TestExactEquivalence:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_threshold_queries_bit_identical(self, registry, family, partitioner):
        """Same objects and same P_app values, for every pdf family."""
        mono = _mono(registry, family)
        sharded = _sharded(registry, family, partitioner)
        workload = _workload()
        mono_exec = BatchExecutor(mono)
        shard_exec = BatchExecutor(sharded)
        mono_res = mono_exec.run(workload)
        shard_res = shard_exec.run(workload)
        for mono_ans, shard_ans in zip(mono_res.answers, shard_res.answers):
            assert mono_ans.sorted_ids() == shard_ans.sorted_ids()
        # The executors memoise every computed P_app keyed on
        # (disk address, rect); shared-global-order data files make the
        # addresses identical, so the memos must be *equal* — the same
        # (object, query) pairs with bit-identical probabilities.
        assert shard_exec._prob_memo == mono_exec._prob_memo
        assert len(shard_exec._prob_memo) > 0

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_plain_executor_matches_per_query(self, registry, partitioner):
        mono = _mono(registry, "uniform")
        sharded = _sharded(registry, "uniform", partitioner)
        for query in _workload(6, seed=31):
            assert (
                execute_query(sharded, query).sorted_ids()
                == execute_query(mono, query).sorted_ids()
            )

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_nearest_neighbor_queries_bit_identical(self, registry, partitioner):
        mono = _mono(registry, "uniform")
        sharded = _sharded(registry, "uniform", partitioner)
        rng = np.random.default_rng(47)
        for _ in range(4):
            point = rng.uniform(1500, 8500, 2)
            mono_nn = probabilistic_nearest_neighbors(mono, point, rounds=600, seed=3)
            shard_nn = probabilistic_nearest_neighbors(sharded, point, rounds=600, seed=3)
            assert [
                (c.oid, c.probability, c.expected_distance)
                for c in mono_nn.candidates
            ] == [
                (c.oid, c.probability, c.expected_distance)
                for c in shard_nn.candidates
            ]
            mono_k = expected_nearest_neighbors(mono, point, k=3, rounds=600, seed=3)
            shard_k = expected_nearest_neighbors(sharded, point, k=3, rounds=600, seed=3)
            assert [(c.oid, c.expected_distance) for c in mono_k.candidates] == [
                (c.oid, c.expected_distance) for c in shard_k.candidates
            ]

    def test_protocol_satisfied(self, registry):
        assert isinstance(_sharded(registry, "uniform", "str"), AccessMethod)


class TestShardsOneDegeneracy:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_single_shard_equals_plain_executor(self, registry, partitioner):
        """One shard is the monolithic tree — even its I/O counts match."""
        mono = _mono(registry, "uniform")
        single = _sharded(registry, "uniform", partitioner, shards=1)
        for query in _workload(6, seed=37):
            mono_ans = execute_query(mono, query)
            single_ans = execute_query(single, query)
            assert mono_ans.object_ids == single_ans.object_ids
            assert mono_ans.stats.node_accesses == single_ans.stats.node_accesses
            assert mono_ans.stats.data_page_reads == single_ans.stats.data_page_reads
            assert mono_ans.stats.physical_reads == single_ans.stats.physical_reads

    def test_single_shard_batch_counters_match(self, registry):
        mono = _mono(registry, "uniform")
        single = _sharded(registry, "uniform", "str", shards=1)
        workload = _workload(6, seed=41)
        mono_res = BatchExecutor(mono).run(workload)
        single_res = BatchExecutor(single).run(workload)
        assert mono_res.batch.data_page_fetches == single_res.batch.data_page_fetches
        assert mono_res.batch.unique_data_pages == single_res.batch.unique_data_pages
        assert single_res.batch.shards == 1
        assert single_res.batch.shard_probes == len(workload)


class TestPruning:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_pruning_disabled_identical_physical_fetches(self, registry, partitioner):
        """The acceptance contract: prune off => same physical page reads."""
        mono = _mono(registry, "uniform")
        sharded = _sharded(registry, "uniform", partitioner)
        sharded.prune = False
        workload = _workload(8, seed=43)
        mono_exec = BatchExecutor(mono)
        shard_exec = BatchExecutor(sharded)
        mono_res = mono_exec.run(workload)
        shard_res = shard_exec.run(workload)
        for mono_ans, shard_ans in zip(mono_res.answers, shard_res.answers):
            assert mono_ans.sorted_ids() == shard_ans.sorted_ids()
        # Refinement-phase physical reads are identical: same candidate
        # addresses over identically packed data files, deduped the same.
        assert mono_res.batch.data_page_fetches == shard_res.batch.data_page_fetches
        assert mono_res.batch.unique_data_pages == shard_res.batch.unique_data_pages
        assert shard_exec._prob_memo == mono_exec._prob_memo
        # Every query probed every shard: nothing was pruned.
        assert shard_res.batch.shard_probes == len(workload) * sharded.shard_count
        assert shard_res.batch.shards_pruned == 0

    def test_pruning_skips_disjoint_shards_soundly(self):
        """Two distant clusters, STR shards: local queries probe locally."""
        rng = np.random.default_rng(53)
        objects = []
        for i in range(24):
            centre = (
                rng.uniform(500, 2500, 2) if i % 2 == 0 else rng.uniform(7500, 9500, 2)
            )
            objects.append(
                UncertainObject(
                    i, UniformDensity(BallRegion(centre, 150.0), marginal_seed=i)
                )
            )
        mono = UTree(2, estimator=_estimator())
        for obj in objects:
            mono.insert(obj)
        sharded = ShardedAccessMethod.build(
            objects, shards=2, partitioner="str", estimator=_estimator()
        )
        local = ProbRangeQuery(Rect([1000, 1000], [2000, 2000]), 0.5)
        answer = execute_query(sharded, local)
        assert answer.sorted_ids() == execute_query(mono, local).sorted_ids()
        assert answer.stats.shard_probes == 1
        assert answer.stats.shards_pruned == 1
        # A pruned shard's objects are accounted as pruned: the distant
        # cluster's 12 objects are part of this query's pruned count.
        assert answer.stats.pruned >= 12
        # Far-out query: nothing intersects, no shard is probed.
        nowhere = ProbRangeQuery(Rect([20000, 20000], [21000, 21000]), 0.5)
        empty = execute_query(sharded, nowhere)
        assert empty.object_ids == []
        assert empty.stats.shard_probes == 0
        assert empty.stats.shards_pruned == 2
        assert empty.stats.node_accesses == 0
        assert empty.stats.pruned == len(objects)


class TestEmptyAndDegenerateShards:
    def test_hash_partition_with_empty_shards(self):
        """All oids congruent mod 4 => three empty shards; still correct."""
        objects = [
            UncertainObject(
                4 * i,
                UniformDensity(
                    BallRegion([2000.0 + 600 * i, 5000.0], 200.0), marginal_seed=i
                ),
            )
            for i in range(8)
        ]
        mono = UTree(2, estimator=_estimator())
        for obj in objects:
            mono.insert(obj)
        sharded = ShardedAccessMethod.build(
            objects, shards=4, partitioner="hash", estimator=_estimator()
        )
        assert sharded.shard_sizes == [8, 0, 0, 0]
        assert sharded.shard_bounds[1] is None
        query = ProbRangeQuery(Rect([1500, 4500], [5200, 5500]), 0.4)
        assert (
            execute_query(sharded, query).sorted_ids()
            == execute_query(mono, query).sorted_ids()
        )
        # Empty shards are never probed with pruning on...
        assert execute_query(sharded, query).stats.shard_probes == 1
        # ... and probing them with pruning off is harmless.
        sharded.prune = False
        assert (
            execute_query(sharded, query).sorted_ids()
            == execute_query(mono, query).sorted_ids()
        )

    def test_more_shards_than_objects(self):
        objects = _family_objects("uniform", n=5, seed=61)
        sharded = ShardedAccessMethod.build(
            objects, shards=9, partitioner="str", estimator=_estimator()
        )
        assert sum(sharded.shard_sizes) == 5
        assert sharded.shard_count == 9
        mono = UTree(2, estimator=_estimator())
        for obj in objects:
            mono.insert(obj)
        for query in _workload(4, seed=67):
            assert (
                execute_query(sharded, query).sorted_ids()
                == execute_query(mono, query).sorted_ids()
            )

    def test_empty_object_list_requires_dim(self):
        with pytest.raises(ValueError):
            ShardedAccessMethod.build([], shards=2)
        sharded = ShardedAccessMethod.build([], shards=2, dim=2)
        assert len(sharded) == 0
        query = ProbRangeQuery(Rect([0, 0], [100, 100]), 0.5)
        assert execute_query(sharded, query).object_ids == []


class TestBatchParallelism:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_batch_answers_match_mono_at_any_parallelism(
        self, registry, partitioner, parallelism
    ):
        mono = _mono(registry, "congau")
        sharded = _sharded(registry, "congau", partitioner)
        workload = _workload(8, seed=71)
        expected = [execute_query(mono, q).sorted_ids() for q in workload]
        result = BatchExecutor(sharded, parallelism=parallelism).run(workload)
        assert [a.sorted_ids() for a in result.answers] == expected
        assert result.batch.shards == sharded.shard_count
        assert result.batch.parallelism == parallelism

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_shard_stats_merge(self, registry, parallelism):
        """Per-shard accounting is exact and consistent in every mode."""
        sharded = _sharded(registry, "uniform", "str")
        workload = _workload(8, seed=73)
        result = BatchExecutor(sharded, parallelism=parallelism).run(workload)
        stats = result.batch.shard_stats
        assert len(stats) == sharded.shard_count
        assert sum(s.probes for s in stats) == result.batch.shard_probes
        assert result.batch.shard_probes + result.batch.shards_pruned == (
            len(workload) * sharded.shard_count
        )
        # Every filter node access came from exactly one shard probe.
        assert sum(s.node_accesses for s in stats) == sum(
            q.node_accesses for q in result.workload.queries
        )
        # Uncached: a shard's physical reads are its node accesses.
        assert all(s.physical_reads == s.node_accesses for s in stats)
        assert all(
            s.probes + s.routed_away == len(workload) for s in stats
        )
        # Candidates fed to refinement, attributed per shard: every
        # refined (object, query) pair came from exactly one probe.  In
        # serial mode the per-query computed + memoised counts equal the
        # candidate feed exactly; parallel workers may race the memo and
        # recompute a pair, so the feed is a lower bound there.
        shard_candidates = sum(s.candidates for s in stats)
        refined_pairs = sum(
            q.prob_computations + q.memoized_probs
            for q in result.workload.queries
        )
        assert shard_candidates > 0
        if parallelism == 1:
            assert shard_candidates == refined_pairs
        else:
            assert shard_candidates <= refined_pairs

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_phase_wallclock_summed_once_per_query(self, registry, parallelism):
        """The stats-merging contract: batch phase clocks are per-query
        sums, and a query's filter_seconds bills each probe exactly once
        (never the whole query window once per shard probe)."""
        sharded = _sharded(registry, "uniform", "str")
        sharded.prune = False  # every query probes all 3 shards
        workload = _workload(6, seed=79)
        result = BatchExecutor(sharded, parallelism=parallelism).run(workload)
        queries = result.workload.queries
        assert result.batch.filter_seconds == sum(q.filter_seconds for q in queries)
        assert result.batch.refine_seconds == sum(q.refine_seconds for q in queries)
        assert all(q.shard_probes == sharded.shard_count for q in queries)
        # Phase fields stay within each query's end-to-end wall clock:
        # a per-probe double count would push filter_seconds past it.
        assert all(q.filter_seconds <= q.wall_seconds for q in queries)


class TestPartitionersAndRouter:
    def test_assignments_are_deterministic_and_total(self):
        objects = _family_objects("uniform", n=23, seed=83)
        for fn in (str_tile_partition, hash_partition):
            first = fn(objects, 5)
            assert first == fn(objects, 5)
            assert len(first) == len(objects)
            assert all(0 <= shard < 5 for shard in first)
        with pytest.raises(ValueError):
            str_tile_partition(objects, 0)
        with pytest.raises(ValueError):
            hash_partition(objects, 0)

    def test_str_tiles_are_balanced(self):
        objects = _family_objects("uniform", n=40, seed=89)
        counts = [0] * 4
        for shard in str_tile_partition(objects, 4):
            counts[shard] += 1
        assert max(counts) - min(counts) <= 2

    def test_single_shard_assignment_is_all_zero(self):
        objects = _family_objects("uniform", n=7, seed=97)
        assert str_tile_partition(objects, 1) == [0] * 7
        assert hash_partition(objects, 1) == [0] * 7

    def test_router_orders_probes_by_planner_price(self, registry):
        sharded = _sharded(registry, "uniform", "str")
        sharded.prune = False
        query = _workload(1, seed=101)[0]
        order = sharded.route(query)
        assert sorted(order) == list(range(sharded.shard_count))
        prices = [sharded.router.price(i, query) for i in order]
        assert prices == sorted(prices)

    def test_planner_for_shards_registers_and_prices(self, registry):
        sharded = _sharded(registry, "uniform", "str")
        planner = Planner.for_shards(sharded.shards)
        assert planner.method_names == [
            f"shard-{i}" for i in range(sharded.shard_count)
        ]
        query = _workload(1, seed=103)[0]
        for name in planner.method_names:
            assert planner.price(name, query) >= 0.0
        with pytest.raises(KeyError):
            planner.price("missing", query)

    def test_empty_shard_prices_infinite_and_sorts_last(self):
        objects = [
            UncertainObject(
                4 * i,
                UniformDensity(BallRegion([5000.0, 5000.0], 200.0), marginal_seed=i),
            )
            for i in range(6)
        ]
        sharded = ShardedAccessMethod.build(
            objects, shards=4, partitioner="hash", estimator=_estimator(), prune=False
        )
        assert sharded.shard_sizes == [6, 0, 0, 0]
        query = ProbRangeQuery(Rect([4000, 4000], [6000, 6000]), 0.5)
        order = sharded.route(query)
        assert order[0] == 0  # the only populated shard probes first
        assert sharded.router.price(1, query) == float("inf")

    def test_unknown_partitioner_and_method_rejected(self):
        objects = _family_objects("uniform", n=4, seed=107)
        with pytest.raises(ValueError):
            ShardedAccessMethod.build(objects, shards=2, partitioner="nope")
        with pytest.raises(ValueError):
            ShardedAccessMethod.build(objects, shards=2, method="nope")


class TestStorageSlices:
    def test_bufferpool_partition_preserves_budget(self):
        pools = BufferPool.partition(10, 4)
        # Remainder frames interleave round-robin (slice 0 first), they
        # are not front-loaded onto a consecutive prefix.
        assert [p.capacity for p in pools] == [3, 2, 3, 2]
        assert BufferPool.partition(0, 3)[0].capacity == 0
        with pytest.raises(ValueError):
            BufferPool.partition(4, 0)
        with pytest.raises(ValueError):
            BufferPool.partition(-1, 2)

    def test_composite_io_counter_sums_children(self):
        first, second = IOCounter(), IOCounter()
        composite = CompositeIOCounter([first, second])
        first.record_read(3)
        second.record_write(2)
        second.record_cache_hit()
        assert composite.reads == 3
        assert composite.writes == 2
        assert composite.cache_hits == 1
        assert composite.total == 5
        assert composite.logical_reads == 4
        snap = composite.snapshot()
        first.record_read()
        assert composite.delta(snap) == (1, 0)
        composite.reset()
        assert first.reads == 0 and second.writes == 0

    def test_sharded_build_with_pool_capacity(self, registry):
        mono = _mono(registry, "uniform")
        sharded = ShardedAccessMethod.build(
            _family_objects("uniform"),
            shards=3,
            estimator=_estimator(),
            pool_capacity=64,
        )
        workload = _workload(5, seed=109)
        for query in workload:
            assert (
                execute_query(sharded, query).sorted_ids()
                == execute_query(mono, query).sorted_ids()
            )
        # A warm pool serves repeats from memory: physical < logical.
        result = BatchExecutor(sharded).run(workload)
        assert result.batch.cache_hits > 0


class TestShardedUpdates:
    def test_insert_and_delete_route_through_shards(self, registry):
        objects = _family_objects("uniform", n=12, seed=113)
        sharded = ShardedAccessMethod.build(
            objects, shards=3, partitioner="str", estimator=_estimator()
        )
        extra = UncertainObject(
            500, UniformDensity(BallRegion([5000.0, 5000.0], 200.0), marginal_seed=500)
        )
        sharded.insert(extra)
        assert len(sharded) == 13
        query = ProbRangeQuery(Rect([4000, 4000], [6000, 6000]), 0.5)
        assert 500 in execute_query(sharded, query).object_ids
        assert sharded.delete(500)
        assert len(sharded) == 12
        assert 500 not in execute_query(sharded, query).object_ids
        assert sharded.delete(999_999) is None
        sharded.refresh_router()  # re-pricing after updates stays valid
        assert sorted(sharded.route(query)) == [
            i for i, b in enumerate(sharded.shard_bounds)
            if b is not None and b.intersects(query.rect)
        ]

    def test_insert_outside_build_bounds_stays_routable(self):
        """Regression: the router must see bounds grown by insert().

        A router holding a stale build-time copy of the shard bounds
        would prune every shard for a query over the new territory and
        silently answer empty.
        """
        objects = _family_objects("uniform", n=12, seed=113)
        sharded = ShardedAccessMethod.build(
            objects, shards=3, partitioner="str", estimator=_estimator()
        )
        outlier = UncertainObject(
            600,
            UniformDensity(BallRegion([20000.0, 20000.0], 200.0), marginal_seed=600),
        )
        sharded.insert(outlier)
        assert sharded.prune  # the default: pruning stays on
        query = ProbRangeQuery(Rect([19000, 19000], [21000, 21000]), 0.5)
        answer = execute_query(sharded, query)
        assert answer.object_ids == [600]
        assert answer.stats.shard_probes >= 1

    def test_hash_delete_goes_to_owning_shard(self):
        objects = _family_objects("uniform", n=12, seed=113)
        sharded = ShardedAccessMethod.build(
            objects, shards=3, partitioner="hash", estimator=_estimator()
        )
        # oid 7 lives in shard 7 % 3 == 1; deleting it must not disturb
        # the other shards' sizes, and a missing oid reports None.
        sizes_before = list(sharded.shard_sizes)
        assert sharded.delete(7)
        assert sharded.shard_sizes[1] == sizes_before[1] - 1
        assert sharded.shard_sizes[0] == sizes_before[0]
        assert sharded.delete(7) is None
        assert sharded.delete(999_999) is None


class TestScanAndUpcrShards:
    @pytest.mark.parametrize("method", ("scan", "upcr"))
    def test_sharded_structures_match_their_monolithic_peer(self, method):
        objects = _family_objects("uniform", n=20, seed=127)
        if method == "scan":
            mono = SequentialScan(2, estimator=_estimator())
        else:
            from repro.core.upcr import UPCRTree

            mono = UPCRTree(2, estimator=_estimator())
        for obj in objects:
            mono.insert(obj)
        sharded = ShardedAccessMethod.build(
            objects, shards=3, method=method, estimator=_estimator()
        )
        for query in _workload(5, seed=131):
            assert (
                execute_query(sharded, query).sorted_ids()
                == execute_query(mono, query).sorted_ids()
            )
