"""Tests for probabilistically constrained regions (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import UCatalog
from repro.core.pcr import PCRSet, compute_pcrs
from repro.geometry.rect import Rect
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BoxRegion
from tests.conftest import make_congau_ball_object, make_histogram_box_object, make_uniform_ball_object


class TestPCRSet:
    def test_validation(self, catalog):
        mbr = Rect([0, 0], [1, 1])
        with pytest.raises(ValueError):
            PCRSet(catalog, np.zeros((2, 2, 2)), mbr)  # wrong m
        with pytest.raises(ValueError):
            PCRSet(catalog, np.zeros((catalog.size, 2, 3)), mbr)  # dim mismatch

    def test_accessors(self, catalog):
        obj = make_uniform_ball_object(0, [100.0, 100.0], radius=10.0)
        pcrs = compute_pcrs(obj, catalog)
        assert pcrs.dim == 2
        box0 = pcrs.box(0)
        assert box0.approx_equals(obj.mbr)
        assert pcrs.lower(0, 0) == pytest.approx(90.0)
        assert pcrs.upper(0, 1) == pytest.approx(110.0)
        assert pcrs.profile().shape == (catalog.size, 2, 2)


class TestComputePCRs:
    def test_uniform_box_exact_quantiles(self, catalog):
        """For a uniform box pdf, pcr planes are linear in p."""
        region = BoxRegion(Rect([0.0, 0.0], [10.0, 20.0]))
        obj = UncertainObject(1, UniformDensity(region))
        pcrs = compute_pcrs(obj, catalog)
        for j, p in enumerate(catalog):
            assert pcrs.lower(j, 0) == pytest.approx(10.0 * p, abs=1e-9)
            assert pcrs.upper(j, 0) == pytest.approx(10.0 * (1 - p), abs=1e-9)
            assert pcrs.lower(j, 1) == pytest.approx(20.0 * p, abs=1e-9)

    def test_zero_value_gives_mbr(self, catalog):
        obj = make_congau_ball_object(2, [50.0, 50.0])
        pcrs = compute_pcrs(obj, catalog)
        assert pcrs.box(0).approx_equals(obj.mbr)

    def test_half_degenerates_to_point(self, catalog):
        """pcr(0.5) collapses to the coordinate-wise median."""
        obj = make_uniform_ball_object(3, [500.0, 500.0])
        pcrs = compute_pcrs(obj, catalog)
        top = pcrs.box(catalog.size - 1)  # p = 0.5
        assert np.allclose(top.lo, top.hi, atol=1e-6)
        assert np.allclose(top.center, [500.0, 500.0], atol=1e-3)

    @pytest.mark.parametrize(
        "factory",
        [make_uniform_ball_object, make_congau_ball_object, make_histogram_box_object],
    )
    def test_nesting_for_every_pdf_family(self, factory, paper_catalog):
        obj = factory(7, [1000.0, 2000.0])
        pcrs = compute_pcrs(obj, paper_catalog)
        assert pcrs.is_nested()

    def test_nesting_strict_check_catches_violation(self, catalog):
        obj = make_uniform_ball_object(4, [0.0, 0.0])
        pcrs = compute_pcrs(obj, catalog)
        broken = pcrs.boxes.copy()
        broken[2, 0, 0] = broken[1, 0, 0] - 1.0  # widen an inner layer
        assert not PCRSet(catalog, broken, pcrs.mbr).is_nested()

    def test_planes_inside_mbr(self, paper_catalog):
        obj = make_congau_ball_object(5, [300.0, 300.0])
        pcrs = compute_pcrs(obj, paper_catalog)
        for j in range(paper_catalog.size):
            assert obj.mbr.contains(pcrs.box(j))

    def test_probability_semantics_uniform_ball(self, paper_catalog, estimator):
        """The defining property: mass left of pcr_i-(p) equals p.

        Checked by Monte-Carlo against the uniform-ball object.
        """
        obj = make_uniform_ball_object(6, [100.0, 100.0], radius=10.0)
        pcrs = compute_pcrs(obj, paper_catalog)
        mbr = obj.mbr
        for j in (3, 7, 11):
            p = paper_catalog[j]
            plane = pcrs.lower(j, 0)
            left = Rect([mbr.lo[0] - 1, mbr.lo[1] - 1], [plane, mbr.hi[1] + 1])
            mass = estimator.estimate(obj.pdf, left, object_id=obj.oid)
            assert mass == pytest.approx(p, abs=0.02)

    def test_probability_semantics_histogram(self, paper_catalog, estimator):
        obj = make_histogram_box_object(8, [100.0, 100.0])
        pcrs = compute_pcrs(obj, paper_catalog)
        mbr = obj.mbr
        j = 7
        p = paper_catalog[j]
        plane = pcrs.upper(j, 1)
        above = Rect([mbr.lo[0] - 1, plane], [mbr.hi[0] + 1, mbr.hi[1] + 1])
        mass = estimator.estimate(obj.pdf, above, object_id=obj.oid)
        assert mass == pytest.approx(p, abs=0.03)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_nesting_randomised(self, seed):
        rng = np.random.default_rng(seed)
        centre = rng.uniform(0, 1000, 2)
        kind = seed % 3
        if kind == 0:
            obj = make_uniform_ball_object(seed, centre)
        elif kind == 1:
            obj = make_congau_ball_object(seed, centre)
        else:
            obj = make_histogram_box_object(seed, centre)
        catalog = UCatalog.evenly_spaced(int(rng.integers(2, 12)))
        pcrs = compute_pcrs(obj, catalog)
        assert pcrs.is_nested()
        assert obj.mbr.contains(pcrs.box(0))
