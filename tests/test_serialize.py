"""Tests for U-tree persistence (save / load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.storage.serialize import (
    SerializationError,
    density_descriptor,
    density_from_descriptor,
    load_utree,
    save_utree,
)
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    Density,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    poisson_histogram,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion
from tests.conftest import make_mixed_objects


class TestDensityDescriptors:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UniformDensity(BallRegion([1.0, 2.0], 3.0), marginal_seed=5),
            lambda: UniformDensity(BoxRegion(Rect([0, 0], [4, 4])), marginal_seed=6),
            lambda: ConstrainedGaussianDensity(
                BallRegion([5.0, 5.0], 2.0), sigma=0.7, marginal_seed=7
            ),
            lambda: ConstrainedGaussianDensity(
                BoxRegion(Rect([0, 0], [4, 4])), sigma=1.1, mean=[1.0, 3.0]
            ),
            lambda: zipf_histogram(BoxRegion(Rect([0, 0], [8, 8])), 4, seed=9),
            lambda: poisson_histogram(BoxRegion(Rect([0, 0], [8, 8])), [2.0, 3.0], 8),
            lambda: RadialExponentialDensity(
                BallRegion([0.0, 0.0], 5.0), scale=1.5, marginal_seed=8
            ),
        ],
    )
    def test_round_trip_density_values(self, factory):
        original = factory()
        restored = density_from_descriptor(density_descriptor(original))
        rng = np.random.default_rng(0)
        pts = original.region.sample(500, rng)
        assert np.allclose(original.density(pts), restored.density(pts))

    def test_mixture_round_trip(self):
        region = BallRegion([0.0, 0.0], 2.0)
        mix = MixtureDensity(
            [UniformDensity(region), ConstrainedGaussianDensity(region, sigma=0.5)],
            weights=[0.3, 0.7],
        )
        restored = density_from_descriptor(density_descriptor(mix))
        pts = region.sample(300, np.random.default_rng(1))
        assert np.allclose(mix.density(pts), restored.density(pts))

    def test_unknown_density_rejected(self):
        class Custom(Density):
            def density(self, points):
                return np.ones(len(points))

        with pytest.raises(SerializationError):
            density_descriptor(Custom(BallRegion([0, 0], 1.0)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            density_from_descriptor({"kind": "cauchy", "region": {"kind": "ball"}})


class TestTreeRoundTrip:
    def test_saved_tree_answers_identically(self, tmp_path):
        objects = make_mixed_objects(60, seed=101)
        estimator = AppearanceEstimator(n_samples=20_000, seed=42)
        tree = UTree(2, estimator=estimator)
        for obj in objects:
            tree.insert(obj)
        path = tmp_path / "tree.npz"
        save_utree(tree, path)

        loaded = load_utree(path, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        loaded.check_invariants()
        assert len(loaded) == len(tree)

        rng = np.random.default_rng(3)
        for __ in range(8):
            centre = rng.uniform(1000, 9000, 2)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(300, 2500))),
                float(rng.uniform(0.1, 0.9)),
            )
            assert loaded.query(query).sorted_ids() == tree.query(query).sorted_ids()

    def test_loaded_tree_supports_updates(self, tmp_path):
        objects = make_mixed_objects(30, seed=102)
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        path = tmp_path / "tree.npz"
        save_utree(tree, path)

        loaded = load_utree(path)
        assert loaded.delete(objects[0].oid) is not None
        extra = make_mixed_objects(5, seed=103)
        for i, obj in enumerate(extra):
            obj.oid += 1000  # type: ignore[misc]
        for obj in extra:
            loaded.insert(obj)
        loaded.check_invariants()
        assert len(loaded) == 34

    def test_catalog_and_layout_preserved(self, tmp_path):
        from repro.core.catalog import UCatalog

        objects = make_mixed_objects(20, seed=104)
        tree = UTree(2, UCatalog([0.0, 0.2, 0.5]), page_size=2048)
        for obj in objects:
            tree.insert(obj)
        path = tmp_path / "tree.npz"
        save_utree(tree, path)
        loaded = load_utree(path)
        assert loaded.catalog == tree.catalog
        assert loaded.engine.layout.page_size == 2048

    def test_empty_tree_round_trip(self, tmp_path):
        tree = UTree(2)
        path = tmp_path / "empty.npz"
        save_utree(tree, path)
        loaded = load_utree(path)
        assert len(loaded) == 0
        answer = loaded.query(ProbRangeQuery(Rect([0, 0], [1, 1]), 0.5))
        assert answer.object_ids == []

    def test_cfbs_restored_verbatim(self, tmp_path):
        """No re-fitting on load: coefficients must match bit-for-bit."""
        objects = make_mixed_objects(10, seed=105)
        tree = UTree(2)
        for obj in objects:
            tree.insert(obj)
        path = tmp_path / "tree.npz"
        save_utree(tree, path)
        loaded = load_utree(path)

        original = {e.data.oid: e.data for e in tree.engine.leaf_entries()}
        for entry in loaded.engine.leaf_entries():
            rec = entry.data
            ref = original[rec.oid]
            assert np.array_equal(rec.outer.intercept, ref.outer.intercept)
            assert np.array_equal(rec.outer.slope, ref.outer.slope)
            assert np.array_equal(rec.inner.intercept, ref.inner.intercept)
            assert np.array_equal(rec.inner.slope, ref.inner.slope)
