"""Tests for query types and the shared refinement step."""

from __future__ import annotations

import pytest

from repro.core.query import ProbRangeQuery, QueryAnswer, refine_candidates
from repro.core.stats import QueryStats, WorkloadStats
from repro.geometry.rect import Rect
from repro.storage.pager import DataFile
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import make_uniform_ball_object


class TestProbRangeQuery:
    def test_basic(self):
        q = ProbRangeQuery(Rect([0, 0], [1, 1]), 0.5)
        assert q.dim == 2
        assert q.threshold == 0.5

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1])
    def test_rejects_bad_threshold(self, bad):
        with pytest.raises(ValueError):
            ProbRangeQuery(Rect([0, 0], [1, 1]), bad)

    def test_threshold_one_allowed(self):
        assert ProbRangeQuery(Rect([0, 0], [1, 1]), 1.0).threshold == 1.0


class TestQueryAnswer:
    def test_contains_and_sorted(self):
        answer = QueryAnswer(object_ids=[3, 1, 2])
        assert 2 in answer
        assert 9 not in answer
        assert answer.sorted_ids() == [1, 2, 3]


class TestRefinement:
    def _setup(self, n_objects=6, page_size=64):
        """Objects packed ~2 per data page (tiny pages force grouping)."""
        data_file = DataFile(page_size=page_size)
        objects = []
        candidates = []
        for i in range(n_objects):
            obj = make_uniform_ball_object(i, [100.0 * i + 50.0, 50.0], radius=20.0)
            addr = data_file.append(obj, 30)
            objects.append(obj)
            candidates.append((obj.oid, addr))
        return data_file, objects, candidates

    def test_refinement_correct(self):
        data_file, objects, candidates = self._setup()
        # Query covering only the first object's region entirely.
        query = ProbRangeQuery(Rect([0.0, 0.0], [100.0, 100.0]), 0.9)
        stats = QueryStats()
        results: list[int] = []
        refine_candidates(
            candidates, query, data_file, AppearanceEstimator(5000, seed=1), stats, results
        )
        assert sorted(results) == [0]
        assert stats.prob_computations == len(candidates)

    def test_groups_by_page(self):
        data_file, objects, candidates = self._setup()
        query = ProbRangeQuery(Rect([0, 0], [1000, 1000]), 0.1)
        stats = QueryStats()
        results: list[int] = []
        refine_candidates(
            candidates, query, data_file, AppearanceEstimator(2000, seed=2), stats, results
        )
        # 6 records, ~2 per page -> 3 pages, strictly fewer reads than candidates.
        assert stats.data_page_reads == data_file.page_count
        assert stats.data_page_reads < len(candidates)

    def test_no_candidates_no_io(self):
        data_file, __, __c = self._setup()
        stats = QueryStats()
        results: list[int] = []
        refine_candidates(
            [], ProbRangeQuery(Rect([0, 0], [1, 1]), 0.5), data_file,
            AppearanceEstimator(1000), stats, results
        )
        assert stats.data_page_reads == 0
        assert results == []


class TestStats:
    def test_query_stats_properties(self):
        stats = QueryStats(
            node_accesses=5, data_page_reads=2, prob_computations=3,
            validated_directly=4, result_count=6,
        )
        assert stats.total_io == 7
        assert stats.validated_fraction == pytest.approx(4 / 6)
        assert QueryStats().validated_fraction == 0.0

    def test_workload_aggregation(self):
        ws = WorkloadStats()
        ws.add(QueryStats(node_accesses=10, prob_computations=4, result_count=5,
                          validated_directly=3, wall_seconds=0.1))
        ws.add(QueryStats(node_accesses=20, prob_computations=0, result_count=5,
                          validated_directly=5, wall_seconds=0.3))
        assert ws.count == 2
        assert ws.avg_node_accesses == 15.0
        assert ws.avg_prob_computations == 2.0
        assert ws.avg_wall_seconds == pytest.approx(0.2)
        assert ws.validated_percentage == pytest.approx(80.0)
        summary = ws.summary()
        assert summary["queries"] == 2.0
        assert summary["validated_percentage"] == pytest.approx(80.0)

    def test_empty_workload(self):
        ws = WorkloadStats()
        assert ws.avg_node_accesses == 0.0
        assert ws.validated_percentage == 0.0
