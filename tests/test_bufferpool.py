"""Tests for the LRU buffer pool and its pager integration.

The load-bearing contract: with no pool (or a capacity-0 pool) every
counter reproduces the paper's uncached accounting exactly; with a warm
pool, physical reads drop while all *logical* numbers (node accesses,
data-page reads, query answers) are unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.storage.bufferpool import BufferPool
from repro.storage.pager import DataFile, IOCounter, PageStore
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import UniformDensity
from repro.uncertainty.regions import BallRegion


class TestBufferPoolLRU:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        fid = pool.register_file()
        assert pool.access(fid, 0) is False
        assert pool.access(fid, 0) is True
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.accesses == 2
        assert pool.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        fid = pool.register_file()
        pool.access(fid, 1)
        pool.access(fid, 2)
        pool.access(fid, 3)  # evicts page 1 (least recently used)
        assert pool.evictions == 1
        assert pool.resident_pages() == [(fid, 2), (fid, 3)]
        assert pool.access(fid, 1) is False  # 1 was evicted -> evicts 2
        assert pool.access(fid, 3) is True
        assert pool.access(fid, 2) is False

    def test_access_refreshes_recency(self):
        pool = BufferPool(2)
        fid = pool.register_file()
        pool.access(fid, 1)
        pool.access(fid, 2)
        pool.access(fid, 1)  # 1 becomes most recent; 2 is now LRU
        pool.access(fid, 3)  # evicts 2, not 1
        assert pool.access(fid, 1) is True
        assert (fid, 2) not in pool

    def test_capacity_zero_never_retains(self):
        pool = BufferPool(0)
        fid = pool.register_file()
        for _ in range(5):
            assert pool.access(fid, 7) is False
        assert pool.hits == 0
        assert pool.misses == 5
        assert len(pool) == 0

    def test_file_namespaces_are_distinct(self):
        pool = BufferPool(4)
        fa = pool.register_file()
        fb = pool.register_file()
        pool.access(fa, 0)
        assert pool.access(fb, 0) is False  # same page id, different file
        assert pool.access(fa, 0) is True

    def test_admit_and_invalidate(self):
        pool = BufferPool(2)
        fid = pool.register_file()
        pool.admit(fid, 9)
        assert pool.hits == 0 and pool.misses == 0
        assert pool.access(fid, 9) is True
        pool.invalidate(fid, 9)
        assert pool.access(fid, 9) is False
        pool.invalidate(fid, 12345)  # absent frame: no-op

    def test_clear_and_reset_counters(self):
        pool = BufferPool(4)
        fid = pool.register_file()
        pool.access(fid, 1)
        pool.access(fid, 1)
        pool.clear()
        assert len(pool) == 0
        assert pool.hits == 1  # counters survive clear()
        pool.reset_counters()
        assert pool.hits == 0 and pool.misses == 0 and pool.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(-1)


class TestScanResistance:
    """Sequential admission must not evict the main LRU working set."""

    def test_scan_does_not_evict_main_frames(self):
        pool = BufferPool(8)
        fid = pool.register_file()
        hot = list(range(8))
        for page in hot:
            pool.access(fid, page)  # warm the working set
        # A flat scan floods 50 pages through the pool, sequentially.
        scan_fid = pool.register_file()
        for page in range(50):
            pool.access(scan_fid, page, sequential=True)
        # Every hot frame survived; the scan lives only in probation.
        assert pool.resident_pages() == [(fid, p) for p in hot]
        for page in hot:
            assert pool.access(fid, page) is True
        assert len(pool.probation_pages()) <= pool.probation_capacity

    def test_probation_queue_is_fifo_bounded(self):
        pool = BufferPool(16, probation_capacity=2)
        fid = pool.register_file()
        for page in range(100, 116):
            pool.access(fid, page)  # fill main: no spare capacity left
        pool.access(fid, 1, sequential=True)
        pool.access(fid, 2, sequential=True)
        pool.access(fid, 3, sequential=True)  # evicts 1 (oldest)
        assert pool.probation_pages() == [(fid, 2), (fid, 3)]
        assert pool.evictions == 1
        assert pool.access(fid, 1, sequential=True) is False

    def test_rereferenced_scan_page_promotes_to_main(self):
        pool = BufferPool(8, probation_capacity=4)
        fid = pool.register_file()
        for page in range(100, 108):
            pool.access(fid, page)  # fill main
        assert pool.access(fid, 5, sequential=True) is False
        assert (fid, 5) in pool
        assert (fid, 5) not in pool.resident_pages()  # probation only
        # Second touch (repeated scan, or a point read): hit + promote.
        assert pool.access(fid, 5, sequential=True) is True
        assert (fid, 5) in pool.resident_pages()
        assert pool.probation_pages() == []
        # Now a further scan flood cannot displace it.
        for page in range(200, 260):
            pool.access(fid, page, sequential=True)
        assert pool.access(fid, 5) is True

    def test_scan_uses_spare_main_capacity(self):
        # An under-committed pool lends idle frames to scans (plain-LRU
        # behavior), so repeated scans over a small file still hit even
        # though a scan may never *evict* a resident frame.
        pool = BufferPool(16, probation_capacity=4)
        fid = pool.register_file()
        for page in range(3):
            pool.access(fid, page, sequential=True)
        assert set(pool.resident_pages()) == {(fid, p) for p in range(3)}
        assert pool.probation_pages() == []
        hits_before = pool.hits
        for page in range(3):
            assert pool.access(fid, page, sequential=True) is True
        assert pool.hits == hits_before + 3

    def test_capacity_zero_disables_probation_too(self):
        pool = BufferPool(0)
        fid = pool.register_file()
        assert pool.probation_capacity == 0
        for _ in range(3):
            assert pool.access(fid, 1, sequential=True) is False
        assert len(pool) == 0

    def test_sequential_scan_structure_uses_probation(self):
        from repro.core.scan import SequentialScan
        from repro.uncertainty.montecarlo import AppearanceEstimator

        # Probation (capacity // 8 = 16) comfortably holds the ~9 summary
        # pages, so repeated scans hit; a scan *larger* than probation
        # would simply thrash the small queue — never the main LRU.
        pool = BufferPool(128)
        scan = SequentialScan(
            2, pool=pool, estimator=AppearanceEstimator(n_samples=500, seed=1)
        )
        for obj in _objects(200):
            scan.insert(obj)
        pool.clear()
        pool.reset_counters()
        # Commit every main frame to a hot working set first, so the
        # scan exercises the probation path, not spare capacity.
        hot_fid = pool.register_file()
        for page in range(pool.capacity):
            pool.access(hot_fid, page)
        query = _workload(1)[0]
        scan.filter_candidates(query)
        # The first scan admits summary pages to probation, not main.
        assert len(pool.probation_pages()) > 0
        assert all(key[0] == hot_fid for key in pool.resident_pages())
        # A repeat scan hits what probation retained.
        hits_before = pool.hits
        scan.filter_candidates(query)
        assert pool.hits > hits_before


class TestPagerIntegration:
    def test_pagestore_reads_route_through_pool(self):
        io = IOCounter()
        pool = BufferPool(8)
        store = PageStore(io, pool=pool)
        page = store.allocate()
        store.touch_read(page)
        store.touch_read(page)
        assert io.reads == 1  # second read was a pool hit
        assert io.cache_hits == 1
        assert io.logical_reads == 2

    def test_pagestore_write_through_admits_frame(self):
        io = IOCounter()
        pool = BufferPool(8)
        store = PageStore(io, pool=pool)
        page = store.allocate()
        store.touch_write(page)
        assert io.writes == 1
        store.touch_read(page)  # just-written page is resident
        assert io.reads == 0
        assert io.cache_hits == 1

    def test_pagestore_free_invalidates_frame(self):
        io = IOCounter()
        pool = BufferPool(8)
        store = PageStore(io, pool=pool)
        page = store.allocate()
        store.touch_read(page)
        assert (store._pool_file_id, page) in pool
        store.free(page)
        assert (store._pool_file_id, page) not in pool

    def test_datafile_reads_route_through_pool(self):
        io = IOCounter()
        pool = BufferPool(8)
        f = DataFile(io, page_size=64, pool=pool)
        addr = f.append("x", 40)
        io.reset()
        pool.clear()
        f.read_page(addr.page_id)
        f.read(addr)
        assert io.reads == 1
        assert io.cache_hits == 1

    def test_no_pool_behaviour_unchanged(self):
        io = IOCounter()
        store = PageStore(io)
        page = store.allocate()
        store.touch_read(page)
        store.touch_read(page)
        assert io.reads == 2
        assert io.cache_hits == 0
        assert io.logical_reads == 2


def _objects(n: int, dim: int = 2, radius: float = 250.0) -> list[UncertainObject]:
    rng = np.random.default_rng(13)
    centres = rng.uniform(0, 10_000, (n, dim))
    return [
        UncertainObject(i, UniformDensity(BallRegion(centres[i], radius)))
        for i in range(n)
    ]


def _workload(n: int, dim: int = 2, qs: float = 1500.0) -> list[ProbRangeQuery]:
    rng = np.random.default_rng(29)
    centres = rng.uniform(1000, 9000, (n, dim))
    return [
        ProbRangeQuery(Rect.from_center(c, qs / 2.0), threshold=0.5) for c in centres
    ]


class TestCapacityZeroReproducesSeedCounts:
    """A capacity-0 pool must be indistinguishable from no pool at all."""

    def test_utree_fixed_workload_page_counts_identical(self):
        objects = _objects(120)
        workload = _workload(12)

        plain = UTree(2)
        pooled = UTree(2, pool=BufferPool(0))
        for obj in objects:
            plain.insert(obj)
            pooled.insert(obj)

        plain.io.reset()
        pooled.io.reset()
        for query in workload:
            a = plain.query(query)
            b = pooled.query(query)
            assert a.object_ids == b.object_ids
            assert a.stats.node_accesses == b.stats.node_accesses
            assert a.stats.data_page_reads == b.stats.data_page_reads
            assert b.stats.cache_hits == 0
            assert b.stats.physical_reads == a.stats.physical_reads

        assert pooled.io.reads == plain.io.reads
        assert pooled.io.writes == plain.io.writes
        assert pooled.io.cache_hits == 0

    def test_warm_pool_same_logical_fewer_physical(self):
        objects = _objects(120)
        workload = _workload(12)

        plain = UTree(2)
        pooled = UTree(2, pool=BufferPool(512))
        for obj in objects:
            plain.insert(obj)
            pooled.insert(obj)

        plain.io.reset()
        pooled.io.reset()
        for query in workload:
            a = plain.query(query)
            b = pooled.query(query)
            assert a.object_ids == b.object_ids
            # Logical accounting (the paper's metric) is pool-independent.
            assert a.stats.node_accesses == b.stats.node_accesses
            assert a.stats.data_page_reads == b.stats.data_page_reads

        assert pooled.io.reads < plain.io.reads
        assert pooled.io.cache_hits > 0
        assert pooled.io.logical_reads == plain.io.logical_reads


class TestPartition:
    """Budget slicing: exact totals, round-robin remainders, 0-slice warning."""

    def test_budget_preserved_and_remainder_interleaved(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # no warning on healthy budgets
            caps = [p.capacity for p in BufferPool.partition(10, 4)]
        assert sum(caps) == 10
        # Remainder frames interleave round-robin across the slice list
        # (slice 0 first), instead of piling onto a consecutive prefix.
        assert caps == [3, 2, 3, 2]
        assert [p.capacity for p in BufferPool.partition(6, 4)] == [2, 1, 2, 1]
        # Even splits stay even and disabled budgets stay disabled.
        assert [p.capacity for p in BufferPool.partition(8, 4)] == [2, 2, 2, 2]
        assert all(p.capacity == 0 for p in BufferPool.partition(0, 5))

    def test_slice_zero_always_funded_first(self):
        # Slice 0 carries ceil(capacity / shards): the most valuable file
        # (the shared data file, by convention) never silently loses its
        # cache while any slice is funded.
        with pytest.warns(UserWarning):
            caps = [p.capacity for p in BufferPool.partition(2, 6)]
        assert caps[0] == 1
        assert sum(caps) == 2

    def test_starved_budget_warns(self):
        with pytest.warns(UserWarning, match="capacity 0"):
            pools = BufferPool.partition(3, 5)
        assert sum(p.capacity for p in pools) == 3
        assert any(p.capacity == 0 for p in pools)
        # A zero budget is deliberate (uncached accounting): no warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            BufferPool.partition(0, 5)
            BufferPool.partition(12, 4)
