"""Tests for dataset generators and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbRangeQuery
from repro.datasets.aircraft import aircraft_objects, aircraft_points
from repro.datasets.synthetic import (
    DOMAIN_HIGH,
    DOMAIN_LOW,
    california_like,
    clustered_points,
    long_beach_like,
    to_uncertain_objects,
)
from repro.datasets.workload import make_workload, workload_grid
from repro.uncertainty.pdfs import ConstrainedGaussianDensity, UniformDensity
from repro.uncertainty.regions import BallRegion


class TestClusteredPoints:
    def test_shape_and_domain(self):
        pts = clustered_points(500, dim=2, seed=0)
        assert pts.shape == (500, 2)
        assert pts.min() >= DOMAIN_LOW
        assert pts.max() <= DOMAIN_HIGH

    def test_deterministic(self):
        a = clustered_points(200, seed=7)
        b = clustered_points(200, seed=7)
        assert np.array_equal(a, b)
        c = clustered_points(200, seed=8)
        assert not np.array_equal(a, c)

    def test_clustered_not_uniform(self):
        """Clustered data concentrates: cell-occupancy variance beats uniform."""
        pts = clustered_points(5000, seed=1)
        uniform = np.random.default_rng(1).uniform(0, 10000, (5000, 2))

        def cell_counts(p):
            bins = np.floor(p / 1000).astype(int).clip(0, 9)
            counts = np.zeros((10, 10))
            for x, y in bins:
                counts[x, y] += 1
            return counts

        assert cell_counts(pts).std() > 2 * cell_counts(uniform).std()

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_points(0)
        with pytest.raises(ValueError):
            clustered_points(10, line_fraction=1.5)

    def test_no_lines(self):
        pts = clustered_points(100, line_fraction=0.0, seed=2)
        assert pts.shape == (100, 2)

    def test_named_datasets(self):
        lb = long_beach_like(1000)
        ca = california_like(1000)
        assert lb.shape == ca.shape == (1000, 2)
        assert not np.array_equal(lb, ca)


class TestToUncertainObjects:
    def test_uniform_conversion(self):
        pts = clustered_points(20, seed=3)
        objs = to_uncertain_objects(pts, radius=250.0, pdf="uniform")
        assert len(objs) == 20
        assert all(isinstance(o.pdf, UniformDensity) for o in objs)
        assert all(isinstance(o.region, BallRegion) for o in objs)
        assert objs[0].region.radius == 250.0
        assert [o.oid for o in objs] == list(range(20))

    def test_congau_conversion_default_sigma(self):
        pts = clustered_points(5, seed=4)
        objs = to_uncertain_objects(pts, radius=250.0, pdf="congau")
        assert all(isinstance(o.pdf, ConstrainedGaussianDensity) for o in objs)
        assert objs[0].pdf.sigma == 125.0  # paper: sigma = radius / 2

    def test_first_oid(self):
        pts = clustered_points(3, seed=5)
        objs = to_uncertain_objects(pts, first_oid=100)
        assert [o.oid for o in objs] == [100, 101, 102]

    def test_validation(self):
        with pytest.raises(ValueError):
            to_uncertain_objects(np.zeros(5))
        with pytest.raises(ValueError):
            to_uncertain_objects(np.zeros((5, 2)), pdf="cauchy")


class TestAircraft:
    def test_points_shape(self):
        pts = aircraft_points(300, n_airports=50, seed=0)
        assert pts.shape == (300, 3)
        assert pts[:, 2].min() >= DOMAIN_LOW
        assert pts[:, 2].max() <= DOMAIN_HIGH

    def test_xy_on_segments(self):
        """(x, y) lies within the convex hull of airports (clip tolerance)."""
        pts = aircraft_points(300, n_airports=50, seed=1)
        assert pts[:, :2].min() >= DOMAIN_LOW - 1e-9
        assert pts[:, :2].max() <= DOMAIN_HIGH + 1e-9

    def test_objects(self):
        objs = aircraft_objects(50, seed=2)
        assert len(objs) == 50
        assert objs[0].dim == 3
        assert objs[0].region.radius == 125.0

    def test_validation(self):
        with pytest.raises(ValueError):
            aircraft_points(0)
        with pytest.raises(ValueError):
            aircraft_points(10, n_airports=1)

    def test_deterministic(self):
        assert np.array_equal(aircraft_points(50, seed=3), aircraft_points(50, seed=3))


class TestWorkload:
    def test_basic(self):
        pts = clustered_points(500, seed=6)
        queries = make_workload(pts, n_queries=20, qs=500.0, pq=0.6, seed=0)
        assert len(queries) == 20
        for q in queries:
            assert isinstance(q, ProbRangeQuery)
            assert q.threshold == 0.6
            assert np.allclose(q.rect.extent, 500.0)

    def test_centres_follow_data(self):
        """Query centres are data points, so they live where the data lives."""
        pts = clustered_points(2000, seed=7)
        queries = make_workload(pts, 50, 100.0, 0.5, seed=1)
        centres = np.stack([q.rect.center for q in queries])
        # Every centre coincides with some data point.
        for c in centres[:10]:
            assert np.min(np.linalg.norm(pts - c, axis=1)) < 1e-9

    def test_validation(self):
        pts = clustered_points(10, seed=8)
        with pytest.raises(ValueError):
            make_workload(pts, 0, 100.0, 0.5)
        with pytest.raises(ValueError):
            make_workload(pts, 5, -1.0, 0.5)
        with pytest.raises(ValueError):
            make_workload(np.zeros((0, 2)), 5, 100.0, 0.5)

    def test_grid_shares_centres_across_thresholds(self):
        pts = clustered_points(100, seed=9)
        grid = workload_grid(pts, 5, [100.0, 200.0], [0.3, 0.7], seed=2)
        assert set(grid) == {(100.0, 0.3), (100.0, 0.7), (200.0, 0.3), (200.0, 0.7)}
        a = grid[(100.0, 0.3)]
        b = grid[(100.0, 0.7)]
        for qa, qb in zip(a, b):
            assert qa.rect == qb.rect
            assert qa.threshold != qb.threshold
