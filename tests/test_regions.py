"""Tests for uncertainty regions: geometry, sampling, volumes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.uncertainty.regions import BallRegion, BoxRegion, unit_ball_volume


class TestUnitBallVolume:
    def test_known_values(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 * math.pi / 3.0)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            unit_ball_volume(0)


class TestBoxRegion:
    def test_basic(self):
        region = BoxRegion(Rect([0, 0], [4, 2]))
        assert region.dim == 2
        assert region.volume() == 8.0
        assert region.mbr() == Rect([0, 0], [4, 2])

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            BoxRegion(Rect([0, 0], [0, 1]))

    def test_membership(self):
        region = BoxRegion(Rect([0, 0], [1, 1]))
        assert region.contains_point([0.5, 0.5])
        assert not region.contains_point([1.5, 0.5])

    def test_sampling_inside_and_uniform(self):
        region = BoxRegion(Rect([2, 3], [4, 9]))
        rng = np.random.default_rng(0)
        pts = region.sample(4000, rng)
        assert pts.shape == (4000, 2)
        assert region.contains_points(pts).all()
        # Mean should approach the centre.
        assert np.allclose(pts.mean(axis=0), [3.0, 6.0], atol=0.15)

    def test_sample_zero(self):
        region = BoxRegion(Rect([0, 0], [1, 1]))
        assert region.sample(0, np.random.default_rng(0)).shape == (0, 2)

    def test_sample_negative_raises(self):
        region = BoxRegion(Rect([0, 0], [1, 1]))
        with pytest.raises(ValueError):
            region.sample(-1, np.random.default_rng(0))


class TestBallRegion:
    def test_basic(self):
        region = BallRegion([5, 5], 2.0)
        assert region.dim == 2
        assert region.volume() == pytest.approx(math.pi * 4.0)
        assert region.mbr() == Rect([3, 3], [7, 7])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BallRegion([0, 0], 0.0)
        with pytest.raises(ValueError):
            BallRegion([0, 0], -1.0)
        with pytest.raises(ValueError):
            BallRegion([], 1.0)

    def test_membership_boundary(self):
        region = BallRegion([0, 0], 1.0)
        assert region.contains_point([1.0, 0.0])
        assert region.contains_point([0.0, 0.0])
        assert not region.contains_point([0.8, 0.8])

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_sampling_inside(self, dim):
        region = BallRegion(np.full(dim, 10.0), 3.0)
        pts = region.sample(3000, np.random.default_rng(1))
        assert pts.shape == (3000, dim)
        assert region.contains_points(pts).all()

    def test_sampling_uniform_radially(self):
        """A uniform ball sample has E[r^2] = R^2 * d / (d + 2) in d dims."""
        region = BallRegion([0.0, 0.0], 1.0)
        pts = region.sample(30_000, np.random.default_rng(2))
        r2 = np.sum(pts**2, axis=1)
        assert r2.mean() == pytest.approx(2.0 / 4.0, abs=0.01)

    def test_monte_carlo_volume(self):
        """Sampled acceptance rate inside the MBR matches pi/4 (2-D)."""
        region = BallRegion([0.0, 0.0], 1.0)
        rng = np.random.default_rng(3)
        box = rng.uniform(-1, 1, size=(40_000, 2))
        frac = region.contains_points(box).mean()
        assert frac == pytest.approx(math.pi / 4.0, abs=0.01)

    @given(st.integers(min_value=1, max_value=4), st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_mbr_contains_samples(self, dim, radius):
        region = BallRegion(np.zeros(dim), radius)
        pts = region.sample(200, np.random.default_rng(4))
        assert region.mbr().contains_points(pts).all()
