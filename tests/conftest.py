"""Shared fixtures for the test-suite.

Small, deterministic objects and catalogs used across many modules.  The
`tiny_page` layouts force deep trees with few entries so structural edge
cases (splits, reinserts, condense) are exercised with small inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    HistogramDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion
from repro.geometry.rect import Rect


@pytest.fixture
def catalog():
    """A small, fast catalog including 0 and 0.5."""
    return UCatalog([0.0, 0.1, 0.25, 0.4, 0.5])


@pytest.fixture
def paper_catalog():
    return UCatalog.paper_utree_default()


@pytest.fixture
def estimator():
    """A Monte-Carlo estimator with enough samples for ~1% accuracy in 2-D."""
    return AppearanceEstimator(n_samples=20_000, seed=42)


def make_uniform_ball_object(oid: int, centre, radius: float = 250.0) -> UncertainObject:
    region = BallRegion(np.asarray(centre, dtype=float), radius)
    return UncertainObject(oid, UniformDensity(region, marginal_seed=oid))


def make_congau_ball_object(oid: int, centre, radius: float = 250.0, sigma: float = 125.0):
    region = BallRegion(np.asarray(centre, dtype=float), radius)
    return UncertainObject(
        oid, ConstrainedGaussianDensity(region, sigma=sigma, marginal_seed=oid)
    )


def make_histogram_box_object(oid: int, centre, half: float = 250.0, cells: int = 6):
    centre = np.asarray(centre, dtype=float)
    region = BoxRegion(Rect(centre - half, centre + half))
    return UncertainObject(oid, zipf_histogram(region, cells, skew=1.1, seed=oid))


def make_mixed_objects(n: int, seed: int = 0, dim: int = 2) -> list[UncertainObject]:
    """Objects cycling through Uniform / Con-Gau / Zipf-histogram pdfs."""
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        centre = rng.uniform(500, 9500, dim)
        kind = i % 3
        if kind == 0:
            objects.append(make_uniform_ball_object(i, centre))
        elif kind == 1:
            objects.append(make_congau_ball_object(i, centre))
        else:
            objects.append(make_histogram_box_object(i, centre))
    return objects


@pytest.fixture
def mixed_objects():
    return make_mixed_objects(60, seed=3)


@pytest.fixture
def uniform_objects():
    rng = np.random.default_rng(11)
    return [
        make_uniform_ball_object(i, rng.uniform(500, 9500, 2)) for i in range(50)
    ]


def brute_force_answer(objects, query, threshold, n_samples=20_000, seed=42):
    """Ground-truth prob-range answer by direct Monte-Carlo on every object.

    Uses the same estimator configuration as the fixtures so index answers
    are bit-identical (common random numbers per object id).
    """
    est = AppearanceEstimator(n_samples=n_samples, seed=seed)
    out = []
    for obj in objects:
        if est.estimate(obj.pdf, query, object_id=obj.oid) >= threshold:
            out.append(obj.oid)
    return sorted(out)
