"""The query service: wire equivalence, snapshots, protocol faults.

The heart of this module is the wire-equivalence matrix: answers served
over a real socket must be *bit-identical* — object ids AND appearance
probabilities compared with ``==`` — to ``Database.run`` /
``Database.probabilities`` on the same engine, across
{utree, upcr, scan} x {kernel on/off} x {shards 1/4}.  The server adds
no execution path of its own; these tests keep it that way.

Around the matrix: snapshot consistency under concurrent writes (every
served answer equals a complete before- or after-write answer, never a
torn one), admission-control shedding (typed BUSY), the protocol's
malformed/oversize/bad-version/unknown-verb error paths, and the
``Database.close()`` idempotence/concurrency regression this PR's
bugfix satellite pins.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.api import Database, ExecConfig, NearestSpec, RangeSpec
from repro.geometry.rect import Rect
from repro.serve import (
    BusyError,
    QueryServer,
    ServeClient,
    ServeError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from tests.conftest import make_mixed_objects, make_uniform_ball_object

N_SAMPLES = 1000
SEED = 11
METHODS = ("utree", "upcr", "scan")
KERNELS = (True, False)
SHARD_COUNTS = (1, 4)


def _objects():
    return make_mixed_objects(36, seed=9)


def _range_specs():
    return [
        RangeSpec(Rect([2000.0, 2000.0], [6000.0, 6000.0]), 0.5),
        RangeSpec(Rect([500.0, 500.0], [9500.0, 9500.0]), 0.25),
        RangeSpec(Rect([4000.0, 1000.0], [8000.0, 5000.0]), 0.8),
    ]


def _make_db(method="utree", *, kernel=True, shards=1, **overrides):
    overrides.setdefault("batch_window_ms", 0.0)
    config = ExecConfig(
        mc_samples=N_SAMPLES,
        seed=SEED,
        filter_kernel=kernel,
        shards=shards,
        **overrides,
    )
    return Database.create(_objects(), config, methods=(method,))


# ----------------------------------------------------------------------
# the wire-equivalence matrix
# ----------------------------------------------------------------------

class TestWireEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("kernel", KERNELS, ids=("kernel", "nokernel"))
    @pytest.mark.parametrize("shards", SHARD_COUNTS, ids=("1shard", "4shards"))
    def test_range_ids_and_probs_bit_identical(self, method, kernel, shards):
        db = _make_db(method, kernel=kernel, shards=shards)
        specs = _range_specs()
        direct = db.run(specs)
        expected = [
            (r.object_ids, db.probabilities(r.spec.rect, r.object_ids))
            for r in direct.results
        ]
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                served = client.run(specs, probs=True)
        assert len(served) == len(specs)
        for (exp_ids, exp_probs), result, probs in zip(
            expected, served.results, served.probs
        ):
            assert result.object_ids == exp_ids
            assert probs == exp_probs
            assert result.method == db.method_names[0]

    @pytest.mark.parametrize("mode", ("probability", "expected"))
    def test_nearest_bit_identical(self, mode):
        db = _make_db("utree")
        spec = NearestSpec([4200.0, 4700.0], k=3, rounds=500, seed=7, mode=mode)
        direct = db.nearest(spec)
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                served = client.nearest(spec)
        assert served.object_ids == direct.object_ids
        assert served.nn is not None
        for got, want in zip(served.nn.candidates, direct.nn.candidates):
            assert got.oid == want.oid
            assert got.probability == want.probability
            assert got.expected_distance == want.expected_distance
        assert served.nn.node_accesses == direct.nn.node_accesses
        assert served.nn.objects_examined == direct.nn.objects_examined

    def test_mixed_batch_and_spec_round_trip(self):
        db = _make_db("utree")
        specs = [*_range_specs(), NearestSpec([5000.0, 5000.0], k=2, rounds=300)]
        direct = db.run(specs)
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                served = client.run(specs)
        for got, want, spec in zip(served.results, direct.results, specs):
            assert got.object_ids == want.object_ids
            assert got.spec == spec  # codec round-trips the spec itself
            assert got.stats.node_accesses == want.stats.node_accesses

    def test_overlays_change_cost_never_answers(self):
        db = _make_db("utree")
        specs = _range_specs()
        expected = [r.object_ids for r in db.run(specs).results]
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                for overlay in (
                    {"parallelism": 4},
                    {"filter_kernel": False},
                    {"parallelism": 2, "filter_kernel": True},
                ):
                    served = client.run(specs, **overlay)
                    assert [r.object_ids for r in served.results] == expected

    def test_explain_matches_direct(self):
        db = _make_db("utree")
        spec = _range_specs()[0]
        direct = db.explain(spec)
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                over_wire = client.explain(spec)
        assert over_wire["choice"] == direct.choice
        assert over_wire["shards"] == direct.shards
        assert over_wire["summary"] == direct.summary()

    def test_served_write_path_equals_direct(self):
        """Insert/delete through the wire land in the same engine state."""
        spec = RangeSpec(Rect([2000.0, 2000.0], [3000.0, 3000.0]), 0.5)
        extra = make_uniform_ball_object(500, [2500.0, 2500.0], radius=100.0)

        reference = _make_db("utree")
        reference.insert(extra)
        want_with = sorted(reference.query(spec).object_ids)
        reference.delete(500)
        want_without = sorted(reference.query(spec).object_ids)

        db = _make_db("utree")
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                assert client.insert(extra) == 1
                assert sorted(client.query(spec).object_ids) == want_with
                assert client.delete(500) is True
                assert client.delete(500) is False  # second delete: absent
                assert sorted(client.query(spec).object_ids) == want_without


# ----------------------------------------------------------------------
# cross-client batching and snapshot consistency
# ----------------------------------------------------------------------

class TestConcurrency:
    def test_cross_client_requests_form_one_batch(self):
        db = _make_db("utree", batch_window_ms=150.0)
        spec = _range_specs()[0]
        expected = db.query(spec).object_ids
        n_clients = 4
        barrier = threading.Barrier(n_clients)
        answers = [None] * n_clients

        def worker(i, address):
            with ServeClient(*address) as client:
                barrier.wait()
                answers[i] = client.query(spec).object_ids

        with QueryServer(db) as server:
            threads = [
                threading.Thread(target=worker, args=(i, server.address))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.queue.stats()
        assert answers == [expected] * n_clients
        # All four released together within one 150ms window: at least
        # one batch must have coalesced requests from different clients.
        assert stats["cross_client_batches"] >= 1
        assert stats["largest_batch_requests"] >= 2

    def test_snapshot_consistency_under_concurrent_writes(self):
        """Every served answer is a complete before- or after-write set."""
        spec = RangeSpec(Rect([2000.0, 2000.0], [3000.0, 3000.0]), 0.5)
        mover = make_uniform_ball_object(700, [2500.0, 2500.0], radius=100.0)

        reference = _make_db("utree")
        without = frozenset(reference.query(spec).object_ids)
        reference.insert(mover)
        with_obj = frozenset(reference.query(spec).object_ids)
        assert with_obj != without  # the write must be observable
        legal = {without, with_obj}

        db = _make_db("utree")
        stop = threading.Event()
        torn: list[frozenset] = []

        def reader(address):
            with ServeClient(*address) as client:
                while not stop.is_set():
                    got = frozenset(client.query(spec).object_ids)
                    if got not in legal:
                        torn.append(got)
                        return

        with QueryServer(db) as server:
            readers = [
                threading.Thread(target=reader, args=(server.address,))
                for _ in range(3)
            ]
            for t in readers:
                t.start()
            with ServeClient(*server.address) as writer:
                for _ in range(15):
                    writer.insert(mover)
                    writer.delete(700)
            stop.set()
            for t in readers:
                t.join()
        assert torn == [], f"served a torn answer set: {torn}"

    def test_busy_shed_over_the_wire(self):
        db = _make_db("utree", max_inflight=1, batch_window_ms=300.0)
        spec = _range_specs()[1]
        outcomes: list[str] = []
        outcomes_lock = threading.Lock()
        barrier = threading.Barrier(6)

        def worker(address):
            with ServeClient(*address) as client:
                barrier.wait()
                try:
                    client.run([spec])
                    outcome = "ok"
                except BusyError:
                    outcome = "busy"
            with outcomes_lock:
                outcomes.append(outcome)

        with QueryServer(db) as server:
            threads = [
                threading.Thread(target=worker, args=(server.address,))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.queue.stats()
        # With a bound of one and six simultaneous clients, someone was
        # shed with a typed BUSY and someone was answered.
        assert "busy" in outcomes
        assert "ok" in outcomes
        assert stats["busy_rejections"] >= 1


# ----------------------------------------------------------------------
# protocol fault paths
# ----------------------------------------------------------------------

def _raw_request(address, payload: bytes, max_reply=1 << 20) -> dict | None:
    """Send pre-encoded bytes, read one reply frame (None on close)."""
    with socket.create_connection(address, timeout=10.0) as sock:
        sock.sendall(payload)
        return recv_frame(sock, max_bytes=max_reply)


class TestProtocolFaults:
    @pytest.fixture()
    def server(self):
        db = _make_db("utree")
        with QueryServer(db) as srv:
            yield srv

    def test_malformed_frame_gets_bad_frame(self, server):
        body = b"this is not json {"
        reply = _raw_request(server.address, struct.pack(">I", len(body)) + body)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "BAD_FRAME"

    def test_truncated_frame_closes_connection(self, server):
        # Header promises 100 bytes, we send 3 and close: the server
        # treats the torn frame as BAD_FRAME and drops the connection.
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(struct.pack(">I", 100) + b"abc")
            sock.shutdown(socket.SHUT_WR)
            reply = recv_frame(sock)
        assert reply is None or reply["error"]["code"] == "BAD_FRAME"

    def test_oversize_frame_gets_too_large(self):
        db = _make_db("utree")
        with QueryServer(db, max_frame_bytes=256) as server:
            body = b'{"pad":"' + b"x" * 512 + b'"}'
            reply = _raw_request(
                server.address, struct.pack(">I", len(body)) + body
            )
            assert reply["ok"] is False
            assert reply["error"]["code"] == "TOO_LARGE"

    def test_wrong_version_rejected(self, server):
        with socket.create_connection(server.address, timeout=10.0) as sock:
            send_frame(sock, {"v": PROTOCOL_VERSION + 7, "id": 1, "verb": "ping"})
            reply = recv_frame(sock)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "BAD_VERSION"

    def test_unknown_verb_rejected(self, server):
        with socket.create_connection(server.address, timeout=10.0) as sock:
            send_frame(sock, {"v": PROTOCOL_VERSION, "id": 1, "verb": "frobnicate"})
            reply = recv_frame(sock)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "BAD_REQUEST"

    def test_bad_specs_and_overlays_are_typed(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client._call("run", {"specs": [{"kind": "polygon"}]})
            assert excinfo.value.code == "BAD_REQUEST"
            with pytest.raises(ServeError) as excinfo:
                client._call(
                    "run",
                    {
                        "specs": [
                            {
                                "kind": "range",
                                "lo": [0, 0],
                                "hi": [1, 1],
                                "threshold": 0.5,
                            }
                        ],
                        "overlay": {"mc_samples": 5},
                    },
                )
            assert excinfo.value.code == "BAD_REQUEST"
            assert "mc_samples" in excinfo.value.message
            # The connection survives typed request errors.
            assert client.ping()["protocol"] == PROTOCOL_VERSION

    def test_unknown_method_overlay(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.run(_range_specs()[:1], method="btree")
            assert excinfo.value.code == "BAD_REQUEST"


# ----------------------------------------------------------------------
# lifecycle: server stop and the close() bugfix regression
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_server_stop_is_idempotent(self):
        db = _make_db("utree")
        server = QueryServer(db).start()
        server.stop()
        server.stop()  # second stop: no-op, no error

    def test_stop_keep_db_open(self):
        db = _make_db("utree")
        spec = _range_specs()[0]
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                served = client.query(spec).object_ids
        # __exit__ ran stop(close_db=True); close() leaves the engine
        # usable (it drops executors and the WAL handle, not the data).
        assert db.query(spec).object_ids == served

    def test_database_close_is_idempotent(self):
        db = _make_db("utree")
        db.close()
        db.close()
        db.close()

    def test_database_close_concurrent_with_runs(self):
        """close() racing in-flight run() calls: no error, db stays usable.

        The regression this pins: close() used to iterate the executor
        cache while run() was inserting into it (RuntimeError: dict
        changed size during iteration) and could double-close executors.
        """
        db = _make_db("utree")
        specs = _range_specs()
        errors: list[BaseException] = []
        stop = threading.Event()

        def runner():
            parallelism = 1
            while not stop.is_set():
                try:
                    # Vary the overlay so new executors keep being built
                    # (each (executor, parallelism, kernel) key is a
                    # fresh cache entry racing the close).
                    parallelism = parallelism % 4 + 1
                    db.run(specs[:1], parallelism=parallelism)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=runner) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(10):
            db.close()
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        expected = [r.object_ids for r in db.run(specs).results]
        db.close()
        assert [r.object_ids for r in db.run(specs).results] == expected

    def test_stats_and_ping_surface(self):
        db = _make_db("utree")
        with QueryServer(db) as server:
            with ServeClient(*server.address) as client:
                info = client.ping()
                assert info["protocol"] == PROTOCOL_VERSION
                assert info["methods"] == ["utree"]
                assert info["objects"] == len(db)
                client.run(_range_specs())
                stats = client.stats()
        assert stats["queue"]["requests"] >= 1
        assert stats["queue"]["specs"] >= 3
        assert stats["served"]["requests"] >= 2
        assert stats["objects"] == 36


# ----------------------------------------------------------------------
# Database.probabilities — the P_app surface the service exposes
# ----------------------------------------------------------------------

class TestProbabilities:
    def test_matches_refinement_for_answered_ids(self):
        db = _make_db("utree")
        spec = _range_specs()[0]
        result = db.query(spec)
        probs = db.probabilities(spec, result.object_ids)
        assert set(probs) == set(result.object_ids)
        # Every answered id cleared the spec's threshold.
        assert all(p >= spec.threshold for p in probs.values())
        # Deterministic: the same lookup is bit-identical.
        assert db.probabilities(spec.rect, result.object_ids) == probs

    def test_unknown_oid_raises(self):
        db = _make_db("utree")
        with pytest.raises(KeyError):
            db.probabilities(_range_specs()[0], [123456])

    def test_unknown_method_raises(self):
        db = _make_db("utree")
        with pytest.raises(KeyError):
            db.probabilities(_range_specs()[0], [0], method="btree")
