"""Tests for the pruning/validation rules (Observations 1-4).

The critical property: a *prune* verdict must never hide a true result and
a *validate* verdict must never report a false one.  We check both engines
(exact PCRs and CFBs) against Monte-Carlo ground truth across pdf
families, query sizes and thresholds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.cfb import fit_cfbs
from repro.core.pcr import compute_pcrs
from repro.core.pruning import CFBRules, PCRRules, Verdict, covers_band, subtree_may_qualify
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import (
    make_congau_ball_object,
    make_histogram_box_object,
    make_uniform_ball_object,
)

# A slack band around the threshold: Monte-Carlo ground truth is itself an
# estimate, so verdicts are only checked when the true probability is
# clearly on one side.
MARGIN = 0.03


class TestCoversBand:
    def setup_method(self):
        self.mbr = Rect([0.0, 0.0], [10.0, 10.0])

    def test_band_fully_covered(self):
        query = Rect([-1.0, -1.0], [11.0, 11.0])
        assert covers_band(query, self.mbr, 0, 2.0, 8.0)

    def test_fails_when_other_axis_uncovered(self):
        query = Rect([-1.0, 1.0], [11.0, 11.0])  # misses y in [0, 1)
        assert not covers_band(query, self.mbr, 0, 2.0, 8.0)

    def test_fails_when_band_uncovered_on_axis(self):
        query = Rect([3.0, -1.0], [11.0, 11.0])  # band starts at 2
        assert not covers_band(query, self.mbr, 0, 2.0, 8.0)

    def test_band_clipped_to_mbr(self):
        query = Rect([-1.0, -1.0], [5.0, 11.0])
        # Band extends beyond the MBR; only [0, 5] matters.
        assert covers_band(query, self.mbr, 0, -math.inf, 5.0)

    def test_empty_band_is_not_covered(self):
        query = Rect([-1.0, -1.0], [11.0, 11.0])
        assert not covers_band(query, self.mbr, 0, 12.0, math.inf)
        assert not covers_band(query, self.mbr, 0, 8.0, 2.0)

    def test_half_open_bands(self):
        query = Rect([4.0, -1.0], [11.0, 11.0])
        assert covers_band(query, self.mbr, 0, 4.0, math.inf)
        assert not covers_band(query, self.mbr, 0, 3.0, math.inf)

    def test_3d(self):
        mbr = Rect([0, 0, 0], [4, 4, 4])
        query = Rect([-1, -1, 1], [5, 5, 5])
        assert covers_band(query, mbr, 2, 2.0, math.inf)
        assert not covers_band(query, mbr, 0, 2.0, math.inf)


def make_object(seed: int):
    rng = np.random.default_rng(seed)
    centre = rng.uniform(1000, 9000, 2)
    kind = seed % 3
    if kind == 0:
        return make_uniform_ball_object(seed, centre)
    if kind == 1:
        return make_congau_ball_object(seed, centre)
    return make_histogram_box_object(seed, centre)


def queries_around(obj, rng, count=14):
    """Queries with assorted overlap against the object."""
    mbr = obj.mbr
    half_extent = mbr.extent.max() / 2.0
    out = []
    for _ in range(count):
        size = rng.uniform(0.3, 4.0) * half_extent
        offset = rng.uniform(-1.8, 1.8, size=2) * half_extent
        out.append(Rect.from_center(mbr.center + offset, size))
    return out


def _check_engine_against_truth(engine_factory, seeds, thresholds):
    estimator = AppearanceEstimator(n_samples=60_000, seed=17)
    stats = {"validated": 0, "pruned": 0, "candidate": 0}
    for seed in seeds:
        obj = make_object(seed)
        rules = engine_factory(obj)
        rng = np.random.default_rng(1000 + seed)
        for query in queries_around(obj, rng):
            truth = estimator.estimate(obj.pdf, query, object_id=obj.oid)
            for pq in thresholds:
                verdict = rules(query, pq)
                if verdict is Verdict.PRUNED:
                    stats["pruned"] += 1
                    assert truth < pq + MARGIN, (
                        f"pruned object with P_app={truth:.3f} >= pq={pq}"
                    )
                elif verdict is Verdict.VALIDATED:
                    stats["validated"] += 1
                    assert truth > pq - MARGIN, (
                        f"validated object with P_app={truth:.3f} < pq={pq}"
                    )
                else:
                    stats["candidate"] += 1
    return stats


class TestPCRRulesSoundness:
    def test_sound_and_effective(self, paper_catalog):
        thresholds = (0.1, 0.3, 0.5, 0.7, 0.9)

        def factory(obj):
            pcrs = compute_pcrs(obj, paper_catalog)
            engine = PCRRules(pcrs)
            return lambda q, pq: engine.apply(q, pq)

        stats = _check_engine_against_truth(factory, range(9), thresholds)
        total = sum(stats.values())
        # The rules must actually do something: most decisions avoid P_app.
        assert (stats["pruned"] + stats["validated"]) > 0.5 * total

    def test_rejects_bad_threshold(self, paper_catalog):
        obj = make_object(0)
        engine = PCRRules(compute_pcrs(obj, paper_catalog))
        with pytest.raises(ValueError):
            engine.apply(Rect([0, 0], [1, 1]), 0.0)
        with pytest.raises(ValueError):
            engine.apply(Rect([0, 0], [1, 1]), 1.5)


class TestCFBRulesSoundness:
    def test_sound_and_effective(self, paper_catalog):
        thresholds = (0.1, 0.3, 0.5, 0.7, 0.9)

        def factory(obj):
            pcrs = compute_pcrs(obj, paper_catalog)
            outer, inner = fit_cfbs(pcrs)
            engine = CFBRules(paper_catalog, outer, inner)
            mbr = obj.mbr
            return lambda q, pq: engine.apply(mbr, q, pq)

        stats = _check_engine_against_truth(factory, range(9), thresholds)
        total = sum(stats.values())
        assert (stats["pruned"] + stats["validated"]) > 0.4 * total

    def test_cfb_never_stronger_than_pcr_pruning(self, paper_catalog):
        """CFB verdicts are conservative relaxations of PCR verdicts:
        whenever CFB prunes, PCR must also prune (Observation 3 is weaker)."""
        for seed in range(6):
            obj = make_object(seed)
            pcrs = compute_pcrs(obj, paper_catalog)
            outer, inner = fit_cfbs(pcrs)
            pcr_engine = PCRRules(pcrs)
            cfb_engine = CFBRules(paper_catalog, outer, inner)
            rng = np.random.default_rng(2000 + seed)
            for query in queries_around(obj, rng, count=10):
                for pq in (0.2, 0.5, 0.8):
                    cfb_v = cfb_engine.apply(obj.mbr, query, pq)
                    pcr_v = pcr_engine.apply(query, pq)
                    if cfb_v is Verdict.PRUNED:
                        assert pcr_v is Verdict.PRUNED
                    if cfb_v is Verdict.VALIDATED:
                        assert pcr_v in (Verdict.VALIDATED, Verdict.CANDIDATE)


class TestSpecificRules:
    """Reconstruct Figure 3/4-style situations with a uniform box object."""

    def _engine(self):
        from repro.uncertainty.pdfs import UniformDensity
        from repro.uncertainty.regions import BoxRegion
        from repro.uncertainty.objects import UncertainObject

        # Uniform on [0,10]^2: pcr(p) = [10p, 10(1-p)]^2 exactly.
        region = BoxRegion(Rect([0.0, 0.0], [10.0, 10.0]))
        obj = UncertainObject(50, UniformDensity(region))
        catalog = UCatalog([0.0, 0.1, 0.25, 0.4, 0.5])
        return PCRRules(compute_pcrs(obj, catalog)), obj.mbr

    def test_rule1_prunes_high_threshold(self):
        engine, mbr = self._engine()
        # Query misses pcr(0.25) = [2.5, 7.5]^2 partially; pq = 0.75 needs
        # rq ⊇ pcr(0.25).
        query = Rect([3.0, -1.0], [11.0, 11.0])
        assert engine.apply(query, 0.76) is Verdict.PRUNED

    def test_rule2_prunes_low_threshold(self):
        engine, mbr = self._engine()
        # Query entirely right of pcr(0.1) = [1,9]^2's upper x-plane.
        query = Rect([9.5, 0.0], [12.0, 10.0])
        assert engine.apply(query, 0.1) is Verdict.PRUNED

    def test_rule3_validates_central_slab(self):
        engine, mbr = self._engine()
        # rq covers x in [1, 9] fully and all of y: mass >= 1 - 2*0.1 = 0.8.
        # (pq = 0.79 keeps (1 - pq)/2 safely above the 0.1 catalog value;
        # at exactly 0.8 floating point lands at 0.0999... and the engine
        # conservatively falls back to the p = 0 slab.)
        query = Rect([0.9, -0.5], [9.1, 10.5])
        assert engine.apply(query, 0.79) is Verdict.VALIDATED

    def test_rule4_validates_high_threshold(self):
        engine, mbr = self._engine()
        # rq covers everything right of x = 1 (pcr_0-(0.1)): mass 0.9.
        query = Rect([0.9, -0.5], [10.5, 10.5])
        assert engine.apply(query, 0.88) is Verdict.VALIDATED

    def test_rule5_validates_low_threshold(self):
        engine, mbr = self._engine()
        # rq covers everything left of x = 2.5 (pcr_0-(0.25)): mass 0.25.
        query = Rect([-0.5, -0.5], [2.6, 10.5])
        assert engine.apply(query, 0.25) is Verdict.VALIDATED

    def test_candidate_when_rules_inconclusive(self):
        engine, mbr = self._engine()
        query = Rect([2.0, 2.0], [6.0, 6.0])  # interior box, partial overlap
        assert engine.apply(query, 0.2) is Verdict.CANDIDATE


class TestSubtreePruning:
    def test_intersecting_subtree_visited(self, catalog):
        boxes = [Rect([0, 0], [10, 10]), Rect([2, 2], [8, 8])]

        def box_at(j):
            return boxes[min(j, 1)]

        assert subtree_may_qualify(catalog, box_at, Rect([5, 5], [6, 6]), 0.3)

    def test_disjoint_subtree_pruned(self, catalog):
        def box_at(j):
            return Rect([0, 0], [1, 1])

        assert not subtree_may_qualify(catalog, box_at, Rect([5, 5], [6, 6]), 0.3)

    def test_selects_largest_value_at_most_pq(self, catalog):
        """Higher pq selects a deeper (smaller) box: more pruning."""
        calls = []

        def box_at(j):
            calls.append(j)
            return Rect([0, 0], [1, 1])

        subtree_may_qualify(catalog, box_at, Rect([5, 5], [6, 6]), 0.42)
        # catalog = [0, .1, .25, .4, .5]; largest <= 0.42 is index 3.
        assert calls == [3]

    def test_pq_above_all_values_uses_top(self, catalog):
        calls = []

        def box_at(j):
            calls.append(j)
            return Rect([0, 0], [1, 1])

        subtree_may_qualify(catalog, box_at, Rect([5, 5], [6, 6]), 0.99)
        assert calls == [4]

    def test_rejects_bad_threshold(self, catalog):
        with pytest.raises(ValueError):
            subtree_may_qualify(catalog, lambda j: Rect([0, 0], [1, 1]), Rect([0, 0], [1, 1]), 0.0)
