"""Tests for conservative functional boxes (Sections 4.3-4.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import UCatalog
from repro.core.cfb import (
    LinearBoxFunction,
    area_proxy_weights,
    fit_cfbs,
    fit_inner_cfb,
    fit_outer_cfb,
)
from repro.core.pcr import compute_pcrs
from tests.conftest import (
    make_congau_ball_object,
    make_histogram_box_object,
    make_uniform_ball_object,
)

TOL = 1e-6


def make_object(seed: int, centre=None):
    rng = np.random.default_rng(seed)
    centre = centre if centre is not None else rng.uniform(0, 5000, 2)
    kind = seed % 3
    if kind == 0:
        return make_uniform_ball_object(seed, centre)
    if kind == 1:
        return make_congau_ball_object(seed, centre)
    return make_histogram_box_object(seed, centre)


class TestLinearBoxFunction:
    def test_evaluation(self):
        f = LinearBoxFunction(
            intercept=np.array([[0.0, 0.0], [10.0, 10.0]]),
            slope=np.array([[2.0, 4.0], [-2.0, -4.0]]),
        )
        box = f.box(0.5)
        assert np.allclose(box.lo, [1.0, 2.0])
        assert np.allclose(box.hi, [9.0, 8.0])
        assert f.lower(0.25, 0) == pytest.approx(0.5)
        assert f.upper(0.25, 1) == pytest.approx(9.0)

    def test_crossing_collapses_to_midpoint(self):
        f = LinearBoxFunction(
            intercept=np.array([[0.0], [1.0]]),
            slope=np.array([[10.0], [-10.0]]),
        )
        box = f.box(0.5)  # lo = 5, hi = -4 -> midpoint 0.5
        assert box.lo[0] == pytest.approx(0.5)
        assert box.hi[0] == pytest.approx(0.5)

    def test_profile_matches_pointwise(self):
        catalog = UCatalog([0.0, 0.2, 0.5])
        f = LinearBoxFunction(
            intercept=np.array([[0.0, 1.0], [8.0, 9.0]]),
            slope=np.array([[1.0, 1.0], [-1.0, -1.0]]),
        )
        profile = f.profile(catalog)
        for j, p in enumerate(catalog):
            box = f.box(p)
            assert np.allclose(profile[j, 0], box.lo)
            assert np.allclose(profile[j, 1], box.hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearBoxFunction(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            LinearBoxFunction(np.zeros((2, 2)), np.zeros((2, 3)))


class TestSandwichInvariant:
    """cfb_in(p_j) ⊆ pcr(p_j) ⊆ cfb_out(p_j) for every catalog value."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 10, 11, 12])
    def test_sandwich(self, seed, paper_catalog):
        obj = make_object(seed)
        pcrs = compute_pcrs(obj, paper_catalog)
        outer, inner = fit_cfbs(pcrs)
        for j, p in enumerate(paper_catalog):
            pcr_box = pcrs.box(j)
            out_box = outer.box(p)
            in_box = inner.box(p)
            assert np.all(out_box.lo <= pcr_box.lo + TOL), f"outer lo at j={j}"
            assert np.all(pcr_box.hi <= out_box.hi + TOL), f"outer hi at j={j}"
            assert np.all(pcr_box.lo <= in_box.lo + TOL), f"inner lo at j={j}"
            assert np.all(in_box.hi <= pcr_box.hi + TOL), f"inner hi at j={j}"

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_sandwich_randomised(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 10))
        catalog = UCatalog.evenly_spaced(m)
        obj = make_object(seed)
        pcrs = compute_pcrs(obj, catalog)
        outer, inner = fit_cfbs(pcrs)
        for j, p in enumerate(catalog):
            pcr_box = pcrs.box(j)
            assert np.all(outer.box(p).lo <= pcr_box.lo + TOL)
            assert np.all(pcr_box.hi <= outer.box(p).hi + TOL)
            assert np.all(pcr_box.lo <= inner.box(p).lo + TOL)
            assert np.all(inner.box(p).hi <= pcr_box.hi + TOL)

    def test_shrink_direction(self, paper_catalog):
        """Faces must not widen as p grows (matching PCR nesting)."""
        obj = make_object(4)
        pcrs = compute_pcrs(obj, paper_catalog)
        outer, inner = fit_cfbs(pcrs)
        for f in (outer, inner):
            assert np.all(f.slope[0] >= -TOL), "lower faces must rise with p"
            assert np.all(f.slope[1] <= TOL), "upper faces must fall with p"


class TestOptimality:
    def test_closed_form_matches_simplex_outer(self, paper_catalog):
        for seed in range(8):
            pcrs = compute_pcrs(make_object(seed), paper_catalog)
            cf = fit_outer_cfb(pcrs, method="closed-form")
            sx = fit_outer_cfb(pcrs, method="simplex")
            margin = lambda f: sum(f.box(p).margin() for p in paper_catalog)
            assert margin(cf) == pytest.approx(margin(sx), abs=1e-6, rel=1e-9)

    def test_closed_form_inner_not_worse_than_needed(self, paper_catalog):
        """Anchored inner is within a whisker of the coupled LP optimum."""
        for seed in range(8):
            pcrs = compute_pcrs(make_object(seed), paper_catalog)
            cf = fit_inner_cfb(pcrs, method="closed-form")
            sx = fit_inner_cfb(pcrs, method="simplex")
            margin = lambda f: sum(f.box(p).margin() for p in paper_catalog)
            assert margin(cf) <= margin(sx) + 1e-6
            assert margin(cf) >= 0.5 * margin(sx) - 1e-6

    def test_outer_touches_pcr_somewhere(self, paper_catalog):
        """A minimal-margin cover must be tight at some catalog value."""
        pcrs = compute_pcrs(make_object(3), paper_catalog)
        outer = fit_outer_cfb(pcrs)
        gaps = []
        for j, p in enumerate(paper_catalog):
            gaps.append(np.min(pcrs.box(j).lo - outer.box(p).lo))
        assert min(gaps) < 1e-3  # touches (up to the repair epsilon)

    def test_unknown_method_rejected(self, paper_catalog):
        pcrs = compute_pcrs(make_object(5), paper_catalog)
        with pytest.raises(ValueError):
            fit_outer_cfb(pcrs, method="magic")


class TestAreaProxy:
    def test_weights_shape_and_positive(self, paper_catalog):
        pcrs = compute_pcrs(make_object(6), paper_catalog)
        weights = area_proxy_weights(pcrs)
        assert weights.shape == (paper_catalog.size, 2)
        assert np.all(weights > 0)

    def test_area_objective_still_contains(self, paper_catalog):
        pcrs = compute_pcrs(make_object(7), paper_catalog)
        outer = fit_outer_cfb(pcrs, weights=area_proxy_weights(pcrs))
        for j, p in enumerate(paper_catalog):
            assert np.all(outer.box(p).lo <= pcrs.box(j).lo + TOL)
            assert np.all(pcrs.box(j).hi <= outer.box(p).hi + TOL)

    def test_bad_weights_rejected(self, paper_catalog):
        pcrs = compute_pcrs(make_object(8), paper_catalog)
        with pytest.raises(ValueError):
            fit_outer_cfb(pcrs, weights=np.zeros(paper_catalog.size))


class TestCompression:
    def test_cfb_representation_is_8d_values(self):
        """The space argument of Section 4.3: 8d floats versus 2dm."""
        f = LinearBoxFunction(np.zeros((2, 3)), np.zeros((2, 3)))
        stored = f.intercept.size + f.slope.size
        assert stored == 4 * 3  # per CFB: 4d values; two CFBs = 8d
