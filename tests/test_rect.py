"""Unit and property tests for hyper-rectangle geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import (
    Rect,
    profile_area,
    profile_centroid_distance,
    profile_contains_profile,
    profile_margin,
    profile_overlap,
    profile_union,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw, dim=2):
    lo = np.array([draw(coords) for _ in range(dim)])
    extent = np.array(
        [draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)) for _ in range(dim)]
    )
    return Rect(lo, lo + extent)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

class TestConstruction:
    def test_basic(self):
        r = Rect([0, 0], [2, 3])
        assert r.dim == 2
        assert r.area() == 6.0
        assert r.margin() == 5.0
        assert np.allclose(r.center, [1.0, 1.5])

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect([1, 0], [0, 1])

    def test_from_arrays_agrees_with_validated_constructor(self):
        """The unvalidated fast path builds the same rectangle."""
        rng = np.random.default_rng(9)
        for _ in range(25):
            lo = rng.uniform(-100, 100, 3)
            hi = lo + rng.uniform(0, 50, 3)
            fast = Rect.from_arrays(lo.copy(), hi.copy())
            checked = Rect(lo, hi)
            assert fast == checked
            assert hash(fast) == hash(checked)
            assert fast.area() == checked.area()
            assert fast.intersects(checked) and checked.contains(fast)
        # Internally produced rects route through the fast path and still
        # agree with first-principles construction.
        a, b = Rect([0.0, 0.0], [2.0, 2.0]), Rect([1.0, 1.0], [3.0, 4.0])
        assert a.union(b) == Rect([0.0, 0.0], [3.0, 4.0])
        assert a.intersection(b) == Rect([1.0, 1.0], [2.0, 2.0])
        # from_arrays skips validation by contract: the caller vouches.
        inverted = Rect.from_arrays(np.array([1.0]), np.array([0.0]))
        assert inverted.lo[0] == 1.0  # constructed, not rejected

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect([], [])

    def test_degenerate_allowed(self):
        r = Rect.from_point([5, 5])
        assert r.area() == 0.0
        assert r.contains_point([5, 5])

    def test_from_center(self):
        r = Rect.from_center([10, 10], 2.5)
        assert r == Rect([7.5, 7.5], [12.5, 12.5])

    def test_from_center_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect.from_center([0, 0], -1.0)

    def test_bounding(self):
        r = Rect.bounding([Rect([0, 0], [1, 1]), Rect([2, -1], [3, 0.5])])
        assert r == Rect([0, -1], [3, 1])

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------

class TestPredicates:
    def test_intersects_overlap(self):
        assert Rect([0, 0], [2, 2]).intersects(Rect([1, 1], [3, 3]))

    def test_intersects_touching_edge(self):
        assert Rect([0, 0], [1, 1]).intersects(Rect([1, 0], [2, 1]))

    def test_disjoint(self):
        assert not Rect([0, 0], [1, 1]).intersects(Rect([2, 0], [3, 1]))

    def test_contains(self):
        outer = Rect([0, 0], [10, 10])
        assert outer.contains(Rect([1, 1], [9, 9]))
        assert outer.contains(outer)
        assert not Rect([1, 1], [9, 9]).contains(outer)

    def test_contains_points_vectorised(self):
        r = Rect([0, 0], [1, 1])
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 1.0]])
        assert r.contains_points(pts).tolist() == [True, False, True]


# ----------------------------------------------------------------------
# combinations
# ----------------------------------------------------------------------

class TestCombinations:
    def test_union(self):
        u = Rect([0, 0], [1, 1]).union(Rect([2, 2], [3, 3]))
        assert u == Rect([0, 0], [3, 3])

    def test_intersection_some(self):
        inter = Rect([0, 0], [2, 2]).intersection(Rect([1, 1], [3, 3]))
        assert inter == Rect([1, 1], [2, 2])

    def test_intersection_none(self):
        assert Rect([0, 0], [1, 1]).intersection(Rect([2, 2], [3, 3])) is None

    def test_overlap_area(self):
        assert Rect([0, 0], [2, 2]).overlap_area(Rect([1, 1], [3, 3])) == 1.0
        assert Rect([0, 0], [1, 1]).overlap_area(Rect([5, 5], [6, 6])) == 0.0

    def test_centroid_distance(self):
        # centres (1,1) and (4,2): distance sqrt(10)
        assert Rect([0, 0], [2, 2]).centroid_distance(Rect([3, 1], [5, 3])) == pytest.approx(10**0.5)

    def test_enlargement(self):
        base = Rect([0, 0], [1, 1])
        assert base.enlargement(Rect([0, 0], [1, 1])) == 0.0
        assert base.enlargement(Rect([0, 0], [2, 1])) == pytest.approx(1.0)

    def test_expanded(self):
        grown = Rect([0, 0], [1, 1]).expanded(1.0)
        assert grown == Rect([-1, -1], [2, 2])


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------

class TestProperties:
    @given(rects(), rects())
    @settings(max_examples=60)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rects(), rects())
    @settings(max_examples=60)
    def test_overlap_symmetric_and_bounded(self, a, b):
        ov = a.overlap_area(b)
        assert ov == pytest.approx(b.overlap_area(a))
        assert ov <= min(a.area(), b.area()) + 1e-6 * max(1.0, a.area(), b.area())

    @given(rects(), rects())
    @settings(max_examples=60)
    def test_intersection_consistent_with_predicate(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(rects())
    @settings(max_examples=60)
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(rects(), rects())
    @settings(max_examples=60)
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9 * max(1.0, a.area())


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------

def _profile(*rect_list):
    return np.stack([r.as_array() for r in rect_list])


class TestProfiles:
    def test_area_and_margin_sum_layers(self):
        p = _profile(Rect([0, 0], [2, 2]), Rect([0, 0], [1, 1]))
        assert profile_area(p) == 5.0
        assert profile_margin(p) == 6.0

    def test_overlap_layerwise(self):
        a = _profile(Rect([0, 0], [2, 2]), Rect([0, 0], [2, 2]))
        b = _profile(Rect([1, 1], [3, 3]), Rect([5, 5], [6, 6]))
        assert profile_overlap(a, b) == 1.0

    def test_union_layerwise(self):
        a = _profile(Rect([0, 0], [1, 1]))
        b = _profile(Rect([2, 2], [3, 3]))
        u = profile_union(a, b)
        assert Rect(u[0, 0], u[0, 1]) == Rect([0, 0], [3, 3])

    def test_centroid_distance(self):
        a = _profile(Rect([0, 0], [2, 2]))
        b = _profile(Rect([3, 1], [5, 3]))
        assert profile_centroid_distance(a, b) == pytest.approx(10**0.5)

    def test_contains_profile(self):
        outer = _profile(Rect([0, 0], [10, 10]), Rect([1, 1], [9, 9]))
        inner = _profile(Rect([1, 1], [2, 2]), Rect([2, 2], [3, 3]))
        assert profile_contains_profile(outer, inner)
        assert not profile_contains_profile(inner, outer)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            profile_area(np.zeros((2, 3, 2)))
