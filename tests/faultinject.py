"""Fault-injection harness for the storage engine.

The durability contract under test: an operation acknowledged by the
write-ahead log survives any crash, an unacknowledged one is never
observable after recovery.  "Any crash" is modelled at byte granularity —
:class:`CrashingFile` wraps the WAL's file handle and dies after a byte
budget, writing the partial prefix first, exactly like a machine losing
power mid-``write``.  A :class:`ByteBudget` is shared across reopens so a
single budget covers a whole multi-operation trace.

Usage::

    budget = ByteBudget(37)
    wal.reopen(crashing_factory(budget))
    try:
        db.insert(obj)          # commits to the WAL first
    except CrashPoint:
        ...                     # the "machine" died mid-append

After a crash, recovery is the production path — ``Database.open`` on the
archive directory replays the log — so these tests prove the real replay
code, not a test double.
"""

from __future__ import annotations

import os
from typing import BinaryIO

__all__ = ["ByteBudget", "CrashPoint", "CrashingFile", "crashing_factory"]


class CrashPoint(Exception):
    """The simulated machine died (power loss mid-write)."""


class ByteBudget:
    """Bytes the simulated disk accepts before the machine dies.

    Shared by every :class:`CrashingFile` built from one
    :func:`crashing_factory`, so the budget spans handle reopens.
    """

    def __init__(self, remaining: int):
        if remaining < 0:
            raise ValueError("budget must be non-negative")
        self.remaining = remaining


class CrashingFile:
    """An append-mode binary file that dies after a byte budget.

    Writes within budget pass through; the write that exhausts it
    persists only the prefix that fit — flushed, so the torn bytes are
    really "on disk" — then raises :class:`CrashPoint`.  Every later
    operation raises too: a dead machine accepts nothing.
    """

    def __init__(self, fh: BinaryIO, budget: ByteBudget):
        self._fh = fh
        self._budget = budget
        self._dead = False

    def _check_alive(self) -> None:
        if self._dead:
            raise CrashPoint("machine already crashed")

    def write(self, data: bytes) -> int:
        self._check_alive()
        if len(data) > self._budget.remaining:
            kept = data[: self._budget.remaining]
            if kept:
                self._fh.write(kept)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._budget.remaining = 0
            self._dead = True
            raise CrashPoint(f"power lost after {len(kept)} of {len(data)} bytes")
        self._fh.write(data)
        self._budget.remaining -= len(data)
        return len(data)

    def flush(self) -> None:
        self._check_alive()
        self._fh.flush()

    def fileno(self) -> int:
        self._check_alive()
        return self._fh.fileno()

    def close(self) -> None:
        # Closing a dead handle is fine (recovery cleans up).
        self._fh.close()


def crashing_factory(budget: ByteBudget):
    """A ``file_factory`` for :class:`repro.storage.wal.WriteAheadLog`
    whose handles share one :class:`ByteBudget` across reopens."""

    def factory(path: str) -> CrashingFile:
        return CrashingFile(open(path, "ab"), budget)

    return factory
