"""Fault-injection harness for the storage engine.

The durability contract under test: an operation acknowledged by the
write-ahead log survives any crash, an unacknowledged one is never
observable after recovery.  "Any crash" is modelled at byte granularity —
:class:`CrashingFile` wraps the WAL's file handle and dies after a byte
budget, writing the partial prefix first, exactly like a machine losing
power mid-``write``.  A :class:`ByteBudget` is shared across reopens so a
single budget covers a whole multi-operation trace.

Usage::

    budget = ByteBudget(37)
    wal.reopen(crashing_factory(budget))
    try:
        db.insert(obj)          # commits to the WAL first
    except CrashPoint:
        ...                     # the "machine" died mid-append

After a crash, recovery is the production path — ``Database.open`` on the
archive directory replays the log — so these tests prove the real replay
code, not a test double.

The PR 9 resilience suite adds the *execution-side* chaos injectors:

* :func:`kill_worker` — SIGKILL a live pool worker (a crashed process);
* :func:`arm_chaos` — make a worker die (``os._exit``) or hang (sleep)
  on its *next* real command, through the executor's own pipe protocol,
  so the fault lands mid-batch exactly where supervision must catch it;
* :class:`FlakyReads` — a ``DataFile.fault_injector`` raising
  ``OSError`` for a bounded number of physical reads (a flaky disk).
"""

from __future__ import annotations

import os
import signal
from typing import BinaryIO

__all__ = [
    "ByteBudget",
    "CrashPoint",
    "CrashingFile",
    "FlakyReads",
    "arm_chaos",
    "crashing_factory",
    "kill_worker",
]


class CrashPoint(Exception):
    """The simulated machine died (power loss mid-write)."""


class ByteBudget:
    """Bytes the simulated disk accepts before the machine dies.

    Shared by every :class:`CrashingFile` built from one
    :func:`crashing_factory`, so the budget spans handle reopens.
    """

    def __init__(self, remaining: int):
        if remaining < 0:
            raise ValueError("budget must be non-negative")
        self.remaining = remaining


class CrashingFile:
    """An append-mode binary file that dies after a byte budget.

    Writes within budget pass through; the write that exhausts it
    persists only the prefix that fit — flushed, so the torn bytes are
    really "on disk" — then raises :class:`CrashPoint`.  Every later
    operation raises too: a dead machine accepts nothing.
    """

    def __init__(self, fh: BinaryIO, budget: ByteBudget):
        self._fh = fh
        self._budget = budget
        self._dead = False

    def _check_alive(self) -> None:
        if self._dead:
            raise CrashPoint("machine already crashed")

    def write(self, data: bytes) -> int:
        self._check_alive()
        if len(data) > self._budget.remaining:
            kept = data[: self._budget.remaining]
            if kept:
                self._fh.write(kept)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._budget.remaining = 0
            self._dead = True
            raise CrashPoint(f"power lost after {len(kept)} of {len(data)} bytes")
        self._fh.write(data)
        self._budget.remaining -= len(data)
        return len(data)

    def flush(self) -> None:
        self._check_alive()
        self._fh.flush()

    def fileno(self) -> int:
        self._check_alive()
        return self._fh.fileno()

    def close(self) -> None:
        # Closing a dead handle is fine (recovery cleans up).
        self._fh.close()


def crashing_factory(budget: ByteBudget):
    """A ``file_factory`` for :class:`repro.storage.wal.WriteAheadLog`
    whose handles share one :class:`ByteBudget` across reopens."""

    def factory(path: str) -> CrashingFile:
        return CrashingFile(open(path, "ab"), budget)

    return factory


# ----------------------------------------------------------------------
# execution-side chaos (process pool + storage reads)
# ----------------------------------------------------------------------

def kill_worker(executor, worker_id: int = 0, sig: int = signal.SIGKILL) -> None:
    """SIGKILL one live worker of a :class:`ProcessBatchExecutor`.

    Forces the pool up first so there is a process to kill, then waits
    for the OS to reap it — the next exchange must find a dead pipe, not
    a half-dead process that might still answer.
    """
    executor._ensure_pool()
    proc = executor._procs[worker_id]
    os.kill(proc.pid, sig)
    proc.join(timeout=10.0)
    if proc.is_alive():  # pragma: no cover - kill cannot be ignored
        raise RuntimeError(f"worker {worker_id} survived signal {sig}")


def arm_chaos(executor, worker_id: int, mode: str, seconds: float = 0.0) -> None:
    """Arm one worker to misbehave on its *next* real command.

    ``mode="exit"`` makes it die via ``os._exit`` (no cleanup, exactly a
    crash); ``mode="hang"`` makes it sleep ``seconds`` before answering,
    which trips the supervisor's deadline when ``seconds`` exceeds the
    executor's ``worker_timeout``.  Delivered through the worker's own
    command pipe so the fault fires inside command dispatch — the spot
    worker supervision must survive.
    """
    if mode not in ("exit", "hang"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    executor._ensure_pool()
    conn = executor._conns[worker_id]
    conn.send(("chaos", (mode, float(seconds))))
    status, payload = conn.recv()
    if status != "ok":  # pragma: no cover - arming is infallible
        raise RuntimeError(f"chaos arming failed: {status} {payload}")


class FlakyReads:
    """A ``DataFile.fault_injector`` modelling a transiently flaky disk.

    Raises ``OSError`` for the first ``failures`` physical page reads it
    sees (optionally only for ``page_id``), then passes everything —
    within the pager's ``io_retry_limit`` the retry loop absorbs the
    fault, beyond it ``TransientIOError`` escapes.
    """

    def __init__(self, failures: int, page_id: int | None = None):
        self.remaining = failures
        self.page_id = page_id
        self.calls = 0
        self.raised = 0

    def __call__(self, page_id: int) -> None:
        self.calls += 1
        if self.page_id is not None and page_id != self.page_id:
            return
        if self.remaining > 0:
            self.remaining -= 1
            self.raised += 1
            raise OSError(f"injected flaky read on page {page_id}")
