"""Exactness suite for the process execution backend (repro.exec.mpexec).

The process backend's contract is stronger than the thread pool's: under
the paper-exact regime (no buffer pool, no sample prewarm) the merged
per-query ``QueryStats``, per-shard ``ShardStats`` and batch totals are
**equal** to the serial path's, not just the answers — page ownership
partitions the probability memo and the sample cache cleanly across
workers, and each worker mirrors the serial phase structure over its
slice.  The matrix below pins that across {utree, upcr, scan} x
{kernel on/off} x {shards 1/4}, with the thread backend asserted
answers-identical alongside.

Also here: the shared-memory plumbing (`SharedArena`, kernel column
rebinding, sample-cloud rebinding), the `DataFileView` reader, the
tiny-batch serial fallback of the thread executor, the
``executor="process"`` config/explain/env surface, pool lifecycle
(close, context manager, re-fork after updates) and the save/open round
trip under the process backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.config import ExecConfig
from repro.api.database import Database
from repro.api.specs import RangeSpec
from repro.core.catalog import UCatalog
from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.exec import (
    BatchExecutor,
    ProcessBatchExecutor,
    ShardedAccessMethod,
)
from repro.geometry.rect import Rect
from repro.storage.pager import DataFile, IOCounter
from repro.storage.shm import SharedArena
from repro.uncertainty.montecarlo import AppearanceEstimator, SampleCache
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import ConstrainedGaussianDensity, UniformDensity
from repro.uncertainty.regions import BallRegion

N_SAMPLES = 600
METHODS = ("utree", "upcr", "scan")
KERNELS = (True, False)
SHARD_COUNTS = (1, 4)

QUERY_FIELDS = (
    "node_accesses",
    "data_page_reads",
    "prob_computations",
    "memoized_probs",
    "validated_directly",
    "pruned",
    "result_count",
    "physical_reads",
    "cache_hits",
    "sample_cache_hits",
    "sample_cache_misses",
    "shard_probes",
    "shards_pruned",
)
SHARD_FIELDS = (
    "shard",
    "probes",
    "routed_away",
    "node_accesses",
    "validated",
    "candidates",
    "pruned",
    "physical_reads",
    "cache_hits",
)
BATCH_FIELDS = (
    "queries",
    "shards",
    "shard_probes",
    "shards_pruned",
    "unique_data_pages",
    "data_page_fetches",
    "logical_data_page_reads",
    "physical_reads",
    "physical_writes",
    "cache_hits",
    "prob_computations",
    "memo_hits",
    "sample_cache_hits",
    "sample_cache_misses",
)


def _objects(n: int = 80, seed: int = 17) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        centre = rng.uniform(1000, 9000, 2)
        radius = float(rng.uniform(150, 400))
        if i % 2:
            pdf = UniformDensity(BallRegion(centre, radius), marginal_seed=i)
        else:
            pdf = ConstrainedGaussianDensity(
                BallRegion(centre, radius), sigma=radius / 2, marginal_seed=i
            )
        objects.append(UncertainObject(i, pdf))
    return objects


def _workload(n: int = 14, seed: int = 37) -> list[ProbRangeQuery]:
    rng = np.random.default_rng(seed)
    return [
        ProbRangeQuery(
            Rect.from_center(
                rng.uniform(1500, 8500, 2), float(rng.uniform(500, 1600))
            ),
            float(rng.choice([0.3, 0.5, 0.75])),
        )
        for _ in range(n)
    ]


def _build(method: str, kernel: bool, shards: int):
    """A freshly built structure (own estimator) for one matrix cell."""
    objects = _objects()
    estimator = AppearanceEstimator(n_samples=N_SAMPLES, seed=1)
    catalog = (
        UCatalog.paper_upcr_default(2)
        if method == "upcr"
        else UCatalog.paper_utree_default()
    )
    filter_kernel = "on" if kernel else "off"
    if shards > 1:
        return ShardedAccessMethod.build(
            objects,
            shards=shards,
            method=method,
            dim=2,
            catalog=catalog,
            page_size=2048,
            estimator=estimator,
            filter_kernel=filter_kernel,
        )
    cls = {"utree": UTree, "upcr": UPCRTree, "scan": SequentialScan}[method]
    structure = cls(
        2, catalog, page_size=2048, estimator=estimator,
        filter_kernel=filter_kernel,
    )
    for obj in objects:
        structure.insert(obj)
    return structure


def _assert_equal_runs(serial, process, *, shards: int) -> None:
    assert [a.object_ids for a in serial.answers] == [
        a.object_ids for a in process.answers
    ]
    for qidx, (s, p) in enumerate(
        zip(serial.workload.queries, process.workload.queries)
    ):
        for name in QUERY_FIELDS:
            assert getattr(s, name) == getattr(p, name), (
                f"query {qidx} field {name}: "
                f"serial={getattr(s, name)} process={getattr(p, name)}"
            )
    for name in BATCH_FIELDS:
        assert getattr(serial.batch, name) == getattr(process.batch, name), (
            f"batch field {name}: serial={getattr(serial.batch, name)} "
            f"process={getattr(process.batch, name)}"
        )
    assert len(serial.batch.shard_stats) == len(process.batch.shard_stats)
    for s, p in zip(serial.batch.shard_stats, process.batch.shard_stats):
        for name in SHARD_FIELDS:
            assert getattr(s, name) == getattr(p, name), (
                f"shard {s.shard} field {name}: "
                f"serial={getattr(s, name)} process={getattr(p, name)}"
            )
    assert serial.batch.executor == "thread"
    assert process.batch.executor == "process"
    assert (serial.batch.shards > 0) == (shards > 1)


class TestEquivalenceMatrix:
    """executor='process' vs 'thread' vs serial, exact counters."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kernel", KERNELS, ids=["kernel", "scalar"])
    @pytest.mark.parametrize("method", METHODS)
    def test_process_counters_match_serial(self, method, kernel, shards):
        queries = _workload()
        serial = BatchExecutor(_build(method, kernel, shards)).run(queries)
        with ProcessBatchExecutor(
            _build(method, kernel, shards), workers=3
        ) as executor:
            process = executor.run(queries)
        _assert_equal_runs(serial, process, shards=shards)

        threaded = BatchExecutor(
            _build(method, kernel, shards),
            parallelism=2,
            serial_fallback_threshold=0,
        ).run(queries)
        assert [a.object_ids for a in threaded.answers] == [
            a.object_ids for a in serial.answers
        ]

    def test_second_batch_reuses_worker_memos(self):
        queries = _workload()
        serial_executor = BatchExecutor(_build("utree", True, 1))
        first_serial = serial_executor.run(queries)
        second_serial = serial_executor.run(queries)
        with ProcessBatchExecutor(_build("utree", True, 1), workers=2) as ex:
            first = ex.run(queries)
            second = ex.run(queries)
        assert first.batch.memo_hits == first_serial.batch.memo_hits
        assert second.batch.memo_hits == second_serial.batch.memo_hits
        assert second.batch.memo_hits > 0
        assert second.batch.data_page_fetches == (
            second_serial.batch.data_page_fetches
        )
        assert [a.object_ids for a in second.answers] == [
            a.object_ids for a in second_serial.answers
        ]

    def test_no_dedupe_and_no_memo_modes_match(self):
        queries = _workload(8)
        for knobs in (
            {"memoize": False},
            {"dedupe_pages": False},
            {"memoize": False, "dedupe_pages": False},
        ):
            serial = BatchExecutor(_build("utree", True, 4), **knobs).run(queries)
            with ProcessBatchExecutor(
                _build("utree", True, 4), workers=2, **knobs
            ) as ex:
                process = ex.run(queries)
            _assert_equal_runs(serial, process, shards=4)

    def test_empty_workload_and_single_worker(self):
        with ProcessBatchExecutor(_build("utree", True, 1), workers=1) as ex:
            empty = ex.run([])
            assert empty.answers == []
            assert empty.batch.queries == 0
            result = ex.run(_workload(4))
            assert len(result.answers) == 4

    def test_share_samples_prewarm_changes_costs_not_answers(self):
        queries = _workload(8)
        serial = BatchExecutor(_build("utree", True, 1)).run(queries)
        with ProcessBatchExecutor(
            _build("utree", True, 1), workers=2, share_samples=True
        ) as ex:
            process = ex.run(queries)
        assert [a.object_ids for a in process.answers] == [
            a.object_ids for a in serial.answers
        ]
        # Every cloud was drawn by the prewarm, so worker refinement
        # never misses — the documented ledger shift.
        assert process.batch.sample_cache_misses == 0


class TestPoolLifecycle:
    def test_refork_after_update(self):
        structure = _build("utree", True, 1)
        queries = _workload(6)
        executor = ProcessBatchExecutor(structure, workers=2)
        before = executor.run(queries)
        assert len(before.answers) == 6

        extra = UncertainObject(
            10_000,
            UniformDensity(BallRegion(np.array([5000.0, 5000.0]), 300.0),
                           marginal_seed=10_000),
        )
        structure.insert(extra)
        after = executor.run(queries)
        executor.close()

        reference = BatchExecutor(structure).run(queries)
        assert [a.object_ids for a in after.answers] == [
            a.object_ids for a in reference.answers
        ]

    def test_close_is_idempotent_and_pool_reforks(self):
        executor = ProcessBatchExecutor(_build("utree", True, 1), workers=2)
        queries = _workload(4)
        first = executor.run(queries)
        executor.close()
        executor.close()
        again = executor.run(queries)  # re-forks transparently
        assert [a.object_ids for a in again.answers] == [
            a.object_ids for a in first.answers
        ]
        executor.close()

    def test_clear_memo_reaches_workers(self):
        executor = ProcessBatchExecutor(_build("utree", True, 1), workers=2)
        queries = _workload(6)
        executor.run(queries)
        executor.clear_memo()
        cold = executor.run(queries)
        executor.close()
        assert cold.batch.memo_hits == 0

    def test_worker_layout_property(self):
        with ProcessBatchExecutor(_build("utree", True, 4), workers=3) as ex:
            assert ex.worker_layout == (0, 1, 2, 0)
        with ProcessBatchExecutor(_build("utree", True, 1), workers=3) as ex:
            assert ex.worker_layout == ()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ProcessBatchExecutor(_build("utree", True, 1), workers=0)


class TestSerialFallback:
    """Tiny thread batches take the serial path; results pin either way."""

    def test_small_batch_falls_back_with_exact_counters(self):
        queries = _workload(6)
        serial = BatchExecutor(_build("utree", True, 1)).run(queries)
        parallel = BatchExecutor(_build("utree", True, 1), parallelism=4).run(
            queries
        )
        assert parallel.batch.serial_fallback is True
        assert parallel.batch.parallelism == 4
        assert [a.object_ids for a in parallel.answers] == [
            a.object_ids for a in serial.answers
        ]
        for s, p in zip(serial.workload.queries, parallel.workload.queries):
            for name in QUERY_FIELDS:
                assert getattr(s, name) == getattr(p, name)

    def test_threshold_zero_disables_fallback(self):
        queries = _workload(6)
        serial = BatchExecutor(_build("utree", True, 1)).run(queries)
        forced = BatchExecutor(
            _build("utree", True, 1), parallelism=4, serial_fallback_threshold=0
        ).run(queries)
        assert forced.batch.serial_fallback is False
        assert [a.object_ids for a in forced.answers] == [
            a.object_ids for a in serial.answers
        ]

    def test_latency_batches_never_fall_back(self):
        result = BatchExecutor(
            _build("utree", True, 1),
            parallelism=2,
            io_latency_seconds=0.0005,
        ).run(_workload(4))
        assert result.batch.serial_fallback is False
        assert result.batch.parallelism == 2

    def test_large_estimated_work_fans_out(self):
        executor = BatchExecutor(_build("utree", True, 1), parallelism=2)
        many = _workload(4) * 200  # 800 queries x 600 samples > threshold
        assert executor._below_fallback_threshold(many) is False
        assert executor._below_fallback_threshold(_workload(4)) is True

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(
                _build("utree", True, 1), serial_fallback_threshold=-1
            )


class TestSharedMemoryPlumbing:
    def test_arena_round_trips_arrays(self):
        arena = SharedArena()
        source = np.arange(24, dtype=np.float64).reshape(4, 6)
        shared = arena.share_array(source)
        assert shared.dtype == source.dtype
        assert shared.shape == source.shape
        assert np.array_equal(shared, source)
        empty = arena.share_array(np.empty((0, 3)))
        assert empty.nbytes == 0
        assert arena.arrays_shared == 1
        assert arena.bytes_shared == source.nbytes
        del shared
        arena.close()
        with pytest.raises(RuntimeError):
            arena.share_array(source)

    def test_kernel_rebind_preserves_classification(self):
        structure = _build("utree", True, 1)
        query = _workload(1)[0]
        before = structure.filter_candidates(query)
        arena = SharedArena()
        structure.kernel.rebind_columns(arena.share_array)
        after = structure.filter_candidates(query)
        assert before.validated == after.validated
        assert before.candidates == after.candidates
        assert before.pruned == after.pruned

    def test_sample_cache_prewarm_and_rebind(self):
        cache = SampleCache(n_samples=200, seed=5)
        estimator = AppearanceEstimator(n_samples=200, seed=5, cache=cache)
        objects = _objects(6)
        resident = cache.prewarm((o.pdf, o.oid) for o in objects)
        assert resident == 6
        rect = Rect.from_center(np.array([5000.0, 5000.0]), 4000.0)
        baseline = [
            o.appearance_probability(rect, estimator) for o in objects
        ]
        arena = SharedArena()
        assert cache.rebind_resident(arena.share_array) == 6
        rebound = [
            o.appearance_probability(rect, estimator) for o in objects
        ]
        assert baseline == rebound

    def test_data_file_view_accounting(self):
        data_file = DataFile(IOCounter(), page_size=512)
        objects = _objects(10)
        addresses = [
            data_file.append(o, o.detail_size_bytes()) for o in objects
        ]
        base_reads = data_file.io.reads
        view = data_file.reader_view(latency_seconds=0.0)
        assert view.page_count == data_file.page_count
        assert view.read(addresses[0]) is objects[0]
        assert view.read_page(addresses[-1].page_id)
        assert view.io.reads == 2
        assert data_file.io.reads == base_reads  # base counter untouched
        assert view.peek(addresses[1]) is objects[1]
        assert view.io.reads == 2  # peek is free
        with pytest.raises(ValueError):
            data_file.reader_view(latency_seconds=-1.0)

    def test_peek_page_charges_nothing(self):
        data_file = DataFile(IOCounter(), page_size=512)
        objects = _objects(4)
        for o in objects:
            data_file.append(o, o.detail_size_bytes())
        reads_before = data_file.io.reads
        payloads = data_file.peek_page(0)
        assert payloads[0] is objects[0]
        assert data_file.io.reads == reads_before


class TestConfigSurface:
    def test_executor_knob_validation(self):
        assert ExecConfig().executor == "thread"
        assert ExecConfig(executor="process").executor == "process"
        with pytest.raises(ValueError):
            ExecConfig(executor="greenlet")
        with pytest.raises(ValueError):
            ExecConfig(executor="process", batched=False)

    def test_executor_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        config = ExecConfig.from_env()
        assert config.executor == "process"
        monkeypatch.setenv("REPRO_EXECUTOR", "THREAD")
        assert ExecConfig.from_env().executor == "thread"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert ExecConfig.from_env().executor == "thread"

    def test_executor_json_round_trip(self):
        config = ExecConfig(executor="process", parallelism=4)
        assert ExecConfig.from_json(config.to_json()) == config
        assert "executor='process'" in config.summary()


class TestDatabaseProcessBackend:
    def _database(self, config: ExecConfig) -> Database:
        return Database.create(_objects(60), config, methods=("utree",))

    def test_database_answers_match_thread_backend(self):
        specs = [
            RangeSpec(rect=q.rect, threshold=q.threshold)
            for q in _workload(8)
        ]
        thread_db = self._database(ExecConfig(mc_samples=N_SAMPLES))
        with self._database(
            ExecConfig(mc_samples=N_SAMPLES, executor="process", parallelism=2)
        ) as process_db:
            process_run = process_db.run(specs)
        thread_run = thread_db.run(specs)
        assert process_run.answers() == thread_run.answers()
        assert process_run.batch.executor == "process"
        assert thread_run.batch.executor == "thread"

    def test_explain_reports_backend_and_layout(self):
        config = ExecConfig(
            mc_samples=N_SAMPLES, executor="process", parallelism=2, shards=4
        )
        with self._database(config) as db:
            spec = RangeSpec(
                rect=Rect.from_center(np.array([5000.0, 5000.0]), 1500.0),
                threshold=0.5,
            )
            explanation = db.explain(spec)
        assert explanation.executor == "process"
        assert explanation.worker_layout == (0, 1, 0, 1)
        assert "process x2" in explanation.summary()
        assert "shard->worker" in explanation.summary()

    def test_save_open_round_trip_with_process_backend(self, tmp_path):
        specs = [
            RangeSpec(rect=q.rect, threshold=q.threshold)
            for q in _workload(6)
        ]
        config = ExecConfig(
            mc_samples=N_SAMPLES, executor="process", parallelism=2, shards=4
        )
        path = tmp_path / "db.npz"
        with self._database(config) as db:
            before = db.run(specs)
            db.save(path)
        with Database.open(path) as restored:
            assert restored.config.executor == "process"
            after = restored.run(specs)
        assert after.answers() == before.answers()
