"""Integration tests for the U-PCR comparison structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.query import ProbRangeQuery
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import brute_force_answer, make_mixed_objects


@pytest.fixture(scope="module")
def built_pair():
    """A U-PCR and a U-tree over the same objects, with identical estimators."""
    objects = make_mixed_objects(80, seed=51)
    upcr = UPCRTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
    utree = UTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
    for obj in objects:
        upcr.insert(obj)
        utree.insert(obj)
    return upcr, utree, objects


class TestQueryCorrectness:
    def test_matches_brute_force(self, built_pair):
        upcr, __, objects = built_pair
        rng = np.random.default_rng(1)
        for __i in range(8):
            centre = objects[int(rng.integers(0, len(objects)))].mbr.center
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(200, 1200))),
                float(rng.uniform(0.1, 0.9)),
            )
            answer = upcr.query(query)
            expected = brute_force_answer(objects, query.rect, query.threshold)
            assert answer.sorted_ids() == expected

    def test_agrees_with_utree(self, built_pair):
        upcr, utree, objects = built_pair
        rng = np.random.default_rng(2)
        for __i in range(10):
            centre = rng.uniform(1000, 9000, 2)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(300, 2500))),
                float(rng.uniform(0.05, 0.95)),
            )
            assert upcr.query(query).sorted_ids() == utree.query(query).sorted_ids()


class TestPaperComparisons:
    def test_upcr_larger_than_utree(self, built_pair):
        """Table 1's driver: PCR entries dwarf CFB entries."""
        upcr, utree, __ = built_pair
        assert upcr.size_bytes >= utree.size_bytes

    def test_upcr_filter_no_weaker(self, built_pair):
        """Exact PCRs prune/validate at least as well as CFBs per object.

        Aggregate over queries: U-PCR should need no more P_app
        computations than the U-tree (its leaf rules dominate)."""
        upcr, utree, objects = built_pair
        rng = np.random.default_rng(3)
        upcr_probs = 0
        utree_probs = 0
        for __i in range(10):
            centre = rng.uniform(1000, 9000, 2)
            query = ProbRangeQuery(
                Rect.from_center(centre, float(rng.uniform(300, 2000))),
                float(rng.uniform(0.1, 0.9)),
            )
            upcr_probs += upcr.query(query).stats.prob_computations
            utree_probs += utree.query(query).stats.prob_computations
        assert upcr_probs <= utree_probs + 2  # tiny slack for tree-shape noise


class TestUpdates:
    def test_insert_delete_roundtrip(self):
        objects = make_mixed_objects(40, seed=52)
        tree = UPCRTree(2, estimator=AppearanceEstimator(n_samples=20_000, seed=42))
        for obj in objects:
            tree.insert(obj)
        tree.check_invariants()
        for obj in objects[:20]:
            assert tree.delete(obj.oid) is not None
        tree.check_invariants()
        query = ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.4)
        expected = brute_force_answer(objects[20:], query.rect, 0.4)
        assert tree.query(query).sorted_ids() == expected

    def test_delete_missing(self):
        tree = UPCRTree(2)
        assert tree.delete(123) is None

    def test_dimension_mismatch(self):
        tree = UPCRTree(3)
        with pytest.raises(ValueError):
            tree.insert(make_mixed_objects(1, seed=53)[0])

    def test_default_catalog_dim_dependent(self):
        assert UPCRTree(2).catalog.size == 9
        assert UPCRTree(3).catalog.size == 10

    def test_custom_catalog_changes_entry_size(self):
        objects = make_mixed_objects(30, seed=54)
        small = UPCRTree(2, UCatalog.evenly_spaced(3))
        large = UPCRTree(2, UCatalog.evenly_spaced(12))
        for obj in objects:
            small.insert(obj)
            large.insert(obj)
        # More PCRs per entry -> fewer entries per node -> more nodes.
        assert large.engine.node_count >= small.engine.node_count
