"""Randomised cross-validation battery.

Each scenario draws a random configuration (dimensionality, catalog,
page size, pdf mix, query parameters) and checks the full contract:
U-tree answers equal brute-force Monte-Carlo answers, structural
invariants hold, and deletion leaves a consistent index.  These are the
"kitchen sink" runs that catch interaction bugs the per-module tests
miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import UCatalog
from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    MixtureDensity,
    RadialExponentialDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion


def random_object(rng: np.random.Generator, oid: int, dim: int) -> UncertainObject:
    centre = rng.uniform(1000, 9000, dim)
    radius = float(rng.uniform(80, 400))
    kind = int(rng.integers(0, 5))
    if kind == 0:
        pdf = UniformDensity(BallRegion(centre, radius), marginal_seed=oid)
    elif kind == 1:
        pdf = ConstrainedGaussianDensity(
            BallRegion(centre, radius), sigma=radius * float(rng.uniform(0.3, 0.7)),
            marginal_seed=oid,
        )
    elif kind == 2:
        region = BoxRegion(Rect(centre - radius, centre + radius))
        pdf = zipf_histogram(region, int(rng.integers(3, 8)), skew=float(rng.uniform(0.5, 2.0)),
                             seed=oid, marginal_seed=oid)
    elif kind == 3:
        pdf = RadialExponentialDensity(
            BallRegion(centre, radius), scale=radius * float(rng.uniform(0.2, 0.6)),
            marginal_seed=oid,
        )
    else:
        region = BallRegion(centre, radius)
        pdf = MixtureDensity(
            [
                UniformDensity(region, marginal_seed=oid),
                ConstrainedGaussianDensity(region, sigma=radius / 3, marginal_seed=oid),
            ],
            weights=[float(rng.uniform(0.2, 0.8)), 1.0],
            marginal_seed=oid,
        )
    return UncertainObject(oid, pdf)


@pytest.mark.parametrize("scenario", range(6))
def test_random_scenario_full_contract(scenario):
    rng = np.random.default_rng(7000 + scenario)
    dim = 2 if scenario % 2 == 0 else 3
    n_objects = int(rng.integers(25, 60))
    m = int(rng.integers(3, 16))
    page_size = int(rng.choice([1024, 2048, 4096]))
    catalog = UCatalog.evenly_spaced(m)
    estimator = AppearanceEstimator(n_samples=15_000, seed=42)

    if dim == 3:
        # 3-D histogram/box pdfs get big; stick to ball-supported families.
        objects = []
        for i in range(n_objects):
            centre = rng.uniform(1000, 9000, 3)
            radius = float(rng.uniform(80, 300))
            if i % 2 == 0:
                pdf = UniformDensity(BallRegion(centre, radius), marginal_seed=i)
            else:
                pdf = ConstrainedGaussianDensity(
                    BallRegion(centre, radius), sigma=radius / 2, marginal_seed=i
                )
            objects.append(UncertainObject(i, pdf))
    else:
        objects = [random_object(rng, i, dim) for i in range(n_objects)]

    tree = UTree(dim, catalog, page_size=page_size, estimator=estimator)
    for obj in objects:
        tree.insert(obj)
    tree.check_invariants()

    reference = AppearanceEstimator(n_samples=15_000, seed=42)

    def truth(query):
        out = []
        for obj in objects:
            if reference.estimate(obj.pdf, query.rect, object_id=obj.oid) >= query.threshold:
                out.append(obj.oid)
        return sorted(out)

    for q in range(4):
        centre = rng.uniform(1500, 8500, dim)
        size = float(rng.uniform(300, 3500))
        pq = round(float(rng.uniform(0.05, 0.95)), 3)
        query = ProbRangeQuery(Rect.from_center(centre, size / 2), pq)
        assert tree.query(query).sorted_ids() == truth(query), (
            f"scenario {scenario} query {q}: dim={dim} m={m} page={page_size} pq={pq}"
        )

    # Delete a random half and re-verify.
    victims = rng.permutation(n_objects)[: n_objects // 2]
    survivors = [obj for obj in objects if obj.oid not in set(victims.tolist())]
    for oid in victims:
        assert tree.delete(int(oid)) is not None
    tree.check_invariants()

    objects = survivors  # truth() closes over this name
    query = ProbRangeQuery(
        Rect.from_center(rng.uniform(2000, 8000, dim), 2000.0),
        0.4,
    )
    assert tree.query(query).sorted_ids() == truth(query)


def test_extreme_catalogs():
    """Degenerate catalogs must still be sound: m = 2 endpoints only."""
    rng = np.random.default_rng(99)
    estimator = AppearanceEstimator(n_samples=15_000, seed=42)
    objects = [
        UncertainObject(i, UniformDensity(BallRegion(rng.uniform(2000, 8000, 2), 200.0),
                                          marginal_seed=i))
        for i in range(30)
    ]
    tree = UTree(2, UCatalog([0.0, 0.5]), estimator=estimator)
    for obj in objects:
        tree.insert(obj)
    reference = AppearanceEstimator(n_samples=15_000, seed=42)
    for pq in (0.1, 0.5, 0.9):
        query = ProbRangeQuery(Rect([3000, 3000], [7000, 7000]), pq)
        expected = sorted(
            obj.oid
            for obj in objects
            if reference.estimate(obj.pdf, query.rect, object_id=obj.oid) >= pq
        )
        assert tree.query(query).sorted_ids() == expected


def _sharded_property_trial(seed: int) -> None:
    """One randomized sharding scenario against brute-force ground truth.

    Draws a random object field, partition count, partitioner, child
    structure and pruning mode, then checks that the sharded answers to
    random rect workloads equal a monolithic ``SequentialScan``'s (the
    exhaustive filter-everything baseline) — partitioning must never
    change an answer set, whatever the configuration.
    """
    from repro.core.scan import SequentialScan
    from repro.exec.shard import ShardedAccessMethod

    rng = np.random.default_rng(seed)
    n_objects = int(rng.integers(12, 36))
    shards = int(rng.integers(1, 7))
    partitioner = ("str", "hash")[int(rng.integers(0, 2))]
    method = ("utree", "scan")[int(rng.integers(0, 2))]
    prune = bool(rng.integers(0, 2))

    objects = []
    for i in range(n_objects):
        centre = rng.uniform(2000, 8000, 2)
        radius = float(rng.uniform(100, 450))
        if i % 2 == 0:
            pdf = UniformDensity(BallRegion(centre, radius), marginal_seed=i)
        else:
            pdf = ConstrainedGaussianDensity(
                BallRegion(centre, radius), sigma=radius / 2, marginal_seed=i
            )
        objects.append(UncertainObject(i, pdf))

    truth = SequentialScan(2, estimator=AppearanceEstimator(n_samples=4000, seed=42))
    for obj in objects:
        truth.insert(obj)
    sharded = ShardedAccessMethod.build(
        objects,
        shards=shards,
        partitioner=partitioner,
        method=method,
        estimator=AppearanceEstimator(n_samples=4000, seed=42),
        prune=prune,
    )
    for q in range(5):
        centre = rng.uniform(1500, 8500, 2)
        half = float(rng.uniform(150, 2000))
        pq = round(float(rng.uniform(0.05, 0.95)), 3)
        query = ProbRangeQuery(Rect.from_center(centre, half), pq)
        assert sharded.query(query).sorted_ids() == truth.query(query).sorted_ids(), (
            f"seed {seed} query {q}: shards={shards} partitioner={partitioner} "
            f"method={method} prune={prune} pq={pq}"
        )


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_sharded_random_workloads_match_scan_ground_truth(seed):
        _sharded_property_trial(seed)

except ImportError:  # hypothesis is optional: a seeded stdlib sweep instead

    @pytest.mark.parametrize("seed", [9100 + trial for trial in range(8)])
    def test_sharded_random_workloads_match_scan_ground_truth(seed):
        _sharded_property_trial(seed)


def test_overlapping_identical_objects():
    """Many objects sharing one location stress tie-handling everywhere."""
    estimator = AppearanceEstimator(n_samples=10_000, seed=42)
    objects = [
        UncertainObject(i, UniformDensity(BallRegion([5000.0, 5000.0], 250.0),
                                          marginal_seed=i))
        for i in range(25)
    ]
    tree = UTree(2, estimator=estimator)
    for obj in objects:
        tree.insert(obj)
    tree.check_invariants()
    # A query covering the shared region returns everyone...
    full = ProbRangeQuery(Rect([4000, 4000], [6000, 6000]), 0.9)
    assert tree.query(full).sorted_ids() == list(range(25))
    # ... and a disjoint one returns no one.
    empty = ProbRangeQuery(Rect([0, 0], [1000, 1000]), 0.1)
    assert tree.query(empty).object_ids == []
