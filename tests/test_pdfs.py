"""Tests for the pdf models: normalisation, evaluation, marginals."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import special

from repro.geometry.rect import Rect
from repro.uncertainty.pdfs import (
    ConstrainedGaussianDensity,
    HistogramDensity,
    MixtureDensity,
    UniformDensity,
    zipf_histogram,
)
from repro.uncertainty.regions import BallRegion, BoxRegion


def monte_carlo_integral(density, n=80_000, seed=0):
    """∫ pdf over the region via uniform sampling: mean(pdf) * volume."""
    rng = np.random.default_rng(seed)
    pts = density.region.sample(n, rng)
    return float(density.density(pts).mean() * density.region.volume())


class TestUniform:
    def test_constant_inside_zero_outside(self):
        region = BallRegion([0, 0], 2.0)
        pdf = UniformDensity(region)
        inside = pdf.density_at([0.5, 0.5])
        assert inside == pytest.approx(1.0 / region.volume())
        assert pdf.density_at([5.0, 5.0]) == 0.0

    @pytest.mark.parametrize(
        "region",
        [BallRegion([1, 2], 3.0), BoxRegion(Rect([0, 0], [2, 5])), BallRegion([0, 0, 0], 1.5)],
    )
    def test_integrates_to_one(self, region):
        assert monte_carlo_integral(UniformDensity(region)) == pytest.approx(1.0)

    def test_box_marginals_exact(self):
        pdf = UniformDensity(BoxRegion(Rect([0, 10], [4, 20])))
        m = pdf.marginals()
        assert m.quantile(0, 0.5) == pytest.approx(2.0)
        assert m.quantile(1, 0.25) == pytest.approx(12.5)
        assert m.cdf(0, 1.0) == pytest.approx(0.25)

    def test_ball_marginals_match_empirical(self):
        region = BallRegion([5.0, 5.0], 2.0)
        pdf = UniformDensity(region)
        m = pdf.marginals()
        pts = region.sample(100_000, np.random.default_rng(1))
        for p in (0.1, 0.25, 0.5, 0.9):
            empirical = np.quantile(pts[:, 0], p)
            assert m.quantile(0, p) == pytest.approx(empirical, abs=0.03)

    def test_ball_marginal_median_is_centre(self):
        pdf = UniformDensity(BallRegion([7.0, -3.0], 1.0))
        m = pdf.marginals()
        assert m.quantile(0, 0.5) == pytest.approx(7.0, abs=1e-6)
        assert m.quantile(1, 0.5) == pytest.approx(-3.0, abs=1e-6)


class TestConstrainedGaussian:
    def test_normaliser_centred_ball_closed_form(self):
        region = BallRegion([0, 0], 250.0)
        pdf = ConstrainedGaussianDensity(region, sigma=125.0)
        expected = special.gammainc(1.0, 250.0**2 / (2 * 125.0**2))
        assert pdf.normaliser == pytest.approx(float(expected))

    @pytest.mark.parametrize(
        "region,sigma,mean",
        [
            (BallRegion([0, 0], 2.0), 1.0, None),
            (BoxRegion(Rect([-1, -1], [1, 1])), 0.7, None),
            (BallRegion([0, 0], 2.0), 1.0, [0.5, 0.0]),  # off-centre -> MC fallback
            (BallRegion([0, 0, 0], 1.5), 0.8, None),
        ],
    )
    def test_integrates_to_one(self, region, sigma, mean):
        pdf = ConstrainedGaussianDensity(region, sigma=sigma, mean=mean)
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)

    def test_zero_outside_region(self):
        pdf = ConstrainedGaussianDensity(BallRegion([0, 0], 1.0), sigma=1.0)
        assert pdf.density_at([2.0, 0.0]) == 0.0

    def test_density_peaks_at_mean(self):
        pdf = ConstrainedGaussianDensity(BallRegion([0, 0], 1.0), sigma=0.5)
        assert pdf.density_at([0, 0]) > pdf.density_at([0.5, 0.5])

    def test_box_marginals_truncated_normal(self):
        region = BoxRegion(Rect([-2, -2], [2, 2]))
        pdf = ConstrainedGaussianDensity(region, sigma=1.0)
        m = pdf.marginals()
        # Symmetric truncation: median at the mean.
        assert m.quantile(0, 0.5) == pytest.approx(0.0, abs=1e-9)
        # Compare against the truncated-normal CDF directly.
        mass = special.ndtr(2.0) - special.ndtr(-2.0)
        x = 0.7
        expected = (special.ndtr(x) - special.ndtr(-2.0)) / mass
        assert m.cdf(0, x) == pytest.approx(float(expected), abs=1e-9)

    def test_ball_marginals_match_empirical(self):
        region = BallRegion([0.0, 0.0], 2.0)
        pdf = ConstrainedGaussianDensity(region, sigma=1.0)
        m = pdf.marginals()
        # Weighted empirical quantiles from a big sample.
        rng = np.random.default_rng(2)
        pts = region.sample(200_000, rng)
        w = pdf.density(pts)
        order = np.argsort(pts[:, 0])
        cum = np.cumsum(w[order])
        cum /= cum[-1]
        for p in (0.1, 0.4, 0.5, 0.9):
            empirical = pts[order, 0][np.searchsorted(cum, p)]
            assert m.quantile(0, p) == pytest.approx(empirical, abs=0.03)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            ConstrainedGaussianDensity(BallRegion([0, 0], 1.0), sigma=0.0)

    def test_rejects_bad_mean_shape(self):
        with pytest.raises(ValueError):
            ConstrainedGaussianDensity(BallRegion([0, 0], 1.0), sigma=1.0, mean=[0, 0, 0])


class TestHistogram:
    def _region(self):
        return BoxRegion(Rect([0, 0], [4, 4]))

    def test_density_piecewise_constant(self):
        weights = np.array([[1.0, 0.0], [0.0, 3.0]])
        pdf = HistogramDensity(self._region(), weights)
        # Cell (0,0) covers [0,2)x[0,2): mass 0.25 over volume 4.
        assert pdf.density_at([1.0, 1.0]) == pytest.approx(0.25 / 4.0)
        assert pdf.density_at([1.0, 3.0]) == 0.0
        assert pdf.density_at([3.0, 3.0]) == pytest.approx(0.75 / 4.0)

    def test_integrates_to_one(self):
        rng = np.random.default_rng(3)
        weights = rng.uniform(0, 1, size=(5, 5))
        pdf = HistogramDensity(self._region(), weights)
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)

    def test_marginals_exact(self):
        weights = np.array([[1.0, 1.0], [2.0, 0.0]])
        pdf = HistogramDensity(self._region(), weights)
        m = pdf.marginals()
        # Axis 0 masses: row sums = [0.5, 0.5] over [0,2], [2,4].
        assert m.cdf(0, 2.0) == pytest.approx(0.5)
        assert m.quantile(0, 0.25) == pytest.approx(1.0)
        # Axis 1 masses: column sums = [0.75, 0.25].
        assert m.cdf(1, 2.0) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramDensity(self._region(), np.array([1.0, 2.0]))  # wrong ndim
        with pytest.raises(ValueError):
            HistogramDensity(self._region(), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            HistogramDensity(self._region(), -np.ones((2, 2)))

    def test_zipf_factory(self):
        pdf = zipf_histogram(self._region(), cells_per_axis=4, skew=1.5, seed=9)
        assert monte_carlo_integral(pdf) == pytest.approx(1.0, abs=0.01)
        # Zipf mass concentrates: the max cell outweighs the median cell.
        flat = np.sort(pdf.weights.ravel())
        assert flat[-1] > 5 * flat[len(flat) // 2]

    def test_zipf_deterministic(self):
        a = zipf_histogram(self._region(), 4, seed=1)
        b = zipf_histogram(self._region(), 4, seed=1)
        assert np.array_equal(a.weights, b.weights)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_histogram(self._region(), 0)
        with pytest.raises(ValueError):
            zipf_histogram(self._region(), 4, skew=-1.0)


class TestMixture:
    def test_integrates_to_one(self):
        region = BallRegion([0, 0], 2.0)
        mix = MixtureDensity(
            [UniformDensity(region), ConstrainedGaussianDensity(region, sigma=1.0)],
            weights=[0.3, 0.7],
        )
        assert monte_carlo_integral(mix) == pytest.approx(1.0, abs=0.01)

    def test_equal_weights_default(self):
        region = BallRegion([0, 0], 1.0)
        mix = MixtureDensity([UniformDensity(region), UniformDensity(region)])
        assert np.allclose(mix.weights, [0.5, 0.5])

    def test_density_is_convex_combination(self):
        region = BallRegion([0, 0], 1.0)
        uni = UniformDensity(region)
        gau = ConstrainedGaussianDensity(region, sigma=0.5)
        mix = MixtureDensity([uni, gau], weights=[0.25, 0.75])
        x = [0.2, -0.1]
        assert mix.density_at(x) == pytest.approx(
            0.25 * uni.density_at(x) + 0.75 * gau.density_at(x)
        )

    def test_requires_shared_region(self):
        with pytest.raises(ValueError):
            MixtureDensity(
                [UniformDensity(BallRegion([0, 0], 1.0)), UniformDensity(BallRegion([0, 0], 1.0))]
            )

    def test_validation(self):
        region = BallRegion([0, 0], 1.0)
        with pytest.raises(ValueError):
            MixtureDensity([])
        with pytest.raises(ValueError):
            MixtureDensity([UniformDensity(region)], weights=[-1.0])

    def test_generic_marginals_via_samples(self):
        region = BallRegion([0.0, 0.0], 1.0)
        mix = MixtureDensity(
            [UniformDensity(region), ConstrainedGaussianDensity(region, sigma=0.5)]
        )
        m = mix.marginals()
        assert m.quantile(0, 0.5) == pytest.approx(0.0, abs=0.05)
        qs = [m.quantile(0, p) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a <= b for a, b in zip(qs, qs[1:]))
