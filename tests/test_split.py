"""Tests for the R* node-split algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.split import rstar_split, rstar_split_profiles


def random_rects(rng, n, d=2, spread=100.0):
    lo = rng.uniform(0, spread, size=(n, d))
    extent = rng.uniform(0.1, spread / 5.0, size=(n, d))
    rects = np.stack([lo, lo + extent], axis=1)
    return rects


class TestRStarSplit:
    def test_partition_is_complete_and_disjoint(self):
        rng = np.random.default_rng(0)
        rects = random_rects(rng, 10)
        g1, g2 = rstar_split(rects, min_fill=3)
        combined = sorted(np.concatenate([g1, g2]).tolist())
        assert combined == list(range(10))

    def test_min_fill_respected(self):
        rng = np.random.default_rng(1)
        rects = random_rects(rng, 11)
        g1, g2 = rstar_split(rects, min_fill=4)
        assert len(g1) >= 4 and len(g2) >= 4

    def test_separates_two_clusters(self):
        """Two well-separated clusters must be split apart."""
        rng = np.random.default_rng(2)
        left = random_rects(rng, 5, spread=10.0)
        right = random_rects(rng, 5, spread=10.0)
        right[:, :, 0] += 1000.0  # shift x by 1000
        rects = np.concatenate([left, right])
        g1, g2 = rstar_split(rects, min_fill=2)
        groups = [set(g1.tolist()), set(g2.tolist())]
        assert {0, 1, 2, 3, 4} in groups
        assert {5, 6, 7, 8, 9} in groups

    def test_rejects_impossible_split(self):
        rng = np.random.default_rng(3)
        rects = random_rects(rng, 4)
        with pytest.raises(ValueError):
            rstar_split(rects, min_fill=3)
        with pytest.raises(ValueError):
            rstar_split(rects, min_fill=0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            rstar_split(np.zeros((5, 3, 2)), min_fill=2)

    def test_axis_choice_prefers_low_margin(self):
        """Rects spread along y but tight in x should split on y."""
        n = 8
        rects = np.zeros((n, 2, 2))
        for i in range(n):
            rects[i, 0] = [0.0, i * 100.0]
            rects[i, 1] = [1.0, i * 100.0 + 1.0]
        g1, g2 = rstar_split(rects, min_fill=2)
        # A y-split puts consecutive indices together.
        g1_sorted = sorted(g1.tolist())
        assert g1_sorted == list(range(g1_sorted[0], g1_sorted[0] + len(g1_sorted)))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_randomised_partition_properties(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 30))
        d = int(rng.integers(1, 4))
        rects = random_rects(rng, n, d=d)
        min_fill = int(rng.integers(1, n // 2 + 1))
        g1, g2 = rstar_split(rects, min_fill)
        assert len(g1) >= min_fill and len(g2) >= min_fill
        assert sorted(np.concatenate([g1, g2]).tolist()) == list(range(n))


class TestAllLayerSplit:
    def test_partition_properties(self):
        rng = np.random.default_rng(5)
        n, layers = 9, 4
        base = random_rects(rng, n)
        profiles = np.stack([base for _ in range(layers)], axis=1)
        # Shrink inner layers, as PCR profiles do.
        for j in range(layers):
            shrink = j * 0.1
            profiles[:, j, 0, :] += shrink
            profiles[:, j, 1, :] -= shrink
        g1, g2 = rstar_split_profiles(profiles, min_fill=3)
        assert sorted(np.concatenate([g1, g2]).tolist()) == list(range(n))
        assert len(g1) >= 3 and len(g2) >= 3

    def test_agrees_with_single_layer_when_one_layer(self):
        rng = np.random.default_rng(6)
        rects = random_rects(rng, 8)
        g1a, g2a = rstar_split(rects, min_fill=3)
        g1b, g2b = rstar_split_profiles(rects[:, None, :, :], min_fill=3)
        # Same objective => same groups (possibly swapped).
        sets_a = {frozenset(g1a.tolist()), frozenset(g2a.tolist())}
        sets_b = {frozenset(g1b.tolist()), frozenset(g2b.tolist())}
        assert sets_a == sets_b

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            rstar_split_profiles(np.zeros((5, 2, 3, 2)), min_fill=2)
        with pytest.raises(ValueError):
            rstar_split_profiles(np.zeros((4, 2, 2, 2)), min_fill=3)
