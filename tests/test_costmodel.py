"""Tests for the analytical U-tree cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costmodel import CostEstimate, UTreeCostModel
from repro.core.query import ProbRangeQuery
from repro.core.utree import UTree
from repro.geometry.rect import Rect
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import make_mixed_objects


@pytest.fixture(scope="module")
def tree():
    objects = make_mixed_objects(250, seed=71)
    t = UTree(2, estimator=AppearanceEstimator(n_samples=4000, seed=42))
    for obj in objects:
        t.insert(obj)
    return t


@pytest.fixture(scope="module")
def model(tree):
    return UTreeCostModel(tree)


def _workload(tree, qs, pq, count=12, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(count):
        centre = rng.uniform(1000, 9000, 2)
        out.append(ProbRangeQuery(Rect.from_center(centre, qs / 2), pq))
    return out


class TestCostEstimate:
    def test_total_io(self):
        est = CostEstimate(node_accesses=5.0, leaf_hits=10.0)
        assert est.total_io(data_records_per_page=2.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            est.total_io(0.0)


class TestModelAccuracy:
    @pytest.mark.parametrize("qs", [500.0, 1500.0, 2500.0])
    def test_node_access_prediction_within_factor(self, tree, model, qs):
        """Predicted node accesses within 2.5x of measured (the classic
        model's accuracy regime for data-distributed windows)."""
        queries = _workload(tree, qs, 0.6, seed=int(qs))
        measured = np.mean([tree.query(q).stats.node_accesses for q in queries])
        predicted = model.estimate_workload(queries).node_accesses
        assert predicted == pytest.approx(measured, rel=1.5), (
            f"qs={qs}: predicted {predicted:.1f} vs measured {measured:.1f}"
        )

    def test_prediction_grows_with_query_size(self, model, tree):
        small = model.estimate_workload(_workload(tree, 300.0, 0.6, seed=1))
        large = model.estimate_workload(_workload(tree, 3000.0, 0.6, seed=1))
        assert large.node_accesses > small.node_accesses
        assert large.leaf_hits > small.leaf_hits

    def test_prediction_uses_threshold_layer(self, model, tree):
        """Higher thresholds probe deeper (smaller) boxes: predicted
        cost must be non-increasing in pq for fixed regions."""
        base = _workload(tree, 1000.0, 0.1, seed=2)
        costs = []
        for pq in (0.1, 0.4, 0.7, 0.95):
            queries = [ProbRangeQuery(q.rect, pq) for q in base]
            costs.append(model.estimate_workload(queries).node_accesses)
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_point_query_cheapest(self, model, tree):
        tiny = model.estimate(ProbRangeQuery(Rect([5000, 5000], [5001, 5001]), 0.5))
        huge = model.estimate(ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.5))
        assert tiny.node_accesses < huge.node_accesses
        # A domain-covering query must visit essentially everything.
        assert huge.node_accesses == pytest.approx(tree.engine.node_count, rel=0.05)


class TestModelMechanics:
    def test_dimension_mismatch(self, model):
        with pytest.raises(ValueError):
            model.estimate(ProbRangeQuery(Rect([0, 0, 0], [1, 1, 1]), 0.5))

    def test_empty_tree_model(self):
        empty = UTree(2)
        model = UTreeCostModel(empty)
        est = model.estimate(ProbRangeQuery(Rect([0, 0], [1, 1]), 0.5))
        assert est.node_accesses == 1.0  # just the root
        assert est.leaf_hits == 0.0

    def test_empty_workload(self, model):
        est = model.estimate_workload([])
        assert est.node_accesses == 0.0 and est.leaf_hits == 0.0

    def test_leaf_hits_bounded_by_objects(self, model, tree):
        est = model.estimate(ProbRangeQuery(Rect([0, 0], [10000, 10000]), 0.5))
        assert est.leaf_hits <= len(tree) + 1e-6
