"""The ``repro.api`` front door: config, specs, facade, persistence.

The heart of this module is the equivalence matrix: ``Database.run``
must be *bit-identical* to the hand-wired legacy paths
(``QueryExecutor`` / ``BatchExecutor``) across
{utree, upcr, scan} x {kernel on/off} x {shards 1/4} x
{parallelism 1/4}, and ``ExecConfig.paper_exact()`` must reproduce the
seed's per-query node-access / data-page / P_app accounting exactly.
The facade adds no third execution path — these tests keep it that way.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.api import Database, ExecConfig, NearestSpec, RangeSpec, Result
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.query import ProbRangeQuery
from repro.core.scan import SequentialScan
from repro.core.upcr import UPCRTree
from repro.core.utree import UTree
from repro.exec.batch import BatchExecutor
from repro.exec.executor import QueryExecutor
from repro.exec.shard import ShardedAccessMethod
from repro.geometry.rect import Rect
from repro.storage.serialize import save_utree
from repro.uncertainty.montecarlo import AppearanceEstimator
from tests.conftest import make_mixed_objects

N_SAMPLES = 1200
SEED = 11
METHODS = ("utree", "upcr", "scan")
KERNELS = ("on", "off")
SHARD_COUNTS = (1, 4)
PARALLELISMS = (1, 4)


def _objects():
    return make_mixed_objects(40, seed=9)


def _specs():
    rng = np.random.default_rng(21)
    specs = []
    for pq in (0.25, 0.5, 0.8):
        centre = rng.uniform(2000, 8000, 2)
        half = float(rng.uniform(600, 1500))
        specs.append(RangeSpec(Rect.from_center(centre, half), pq))
    specs.append(RangeSpec(Rect([0.0, 0.0], [10_000.0, 10_000.0]), 0.4))
    return specs


def _estimator():
    return AppearanceEstimator(n_samples=N_SAMPLES, seed=SEED)


def _legacy_structure(method: str, kernel: str, shards: int):
    """The hand-wired build the facade must reproduce bit for bit."""
    objects = _objects()
    if shards > 1:
        return ShardedAccessMethod.build(
            objects, shards=shards, partitioner="str", method=method,
            estimator=_estimator(), filter_kernel=kernel,
        )
    cls = {"utree": UTree, "upcr": UPCRTree, "scan": SequentialScan}[method]
    structure = cls(2, estimator=_estimator(), filter_kernel=kernel)
    for obj in objects:
        structure.insert(obj)
    return structure


@pytest.fixture(scope="module")
def structures():
    """One legacy build per (method, kernel, shards), shared by the matrix."""
    cache: dict = {}

    def get(method: str, kernel: str, shards: int):
        key = (method, kernel, shards)
        if key not in cache:
            cache[key] = _legacy_structure(*key)
        return cache[key]

    return get


class TestExecConfig:
    def test_defaults_are_valid(self):
        config = ExecConfig()
        assert config.shards == 1 and config.batched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"partitioner": "zorder"},
            {"parallelism": 0},
            {"batched": False, "parallelism": 2},
            {"io_latency_seconds": -1.0},
            {"pool_capacity": -1},
            {"page_size": 64},
            {"mc_samples": 0},
            {"filter_kernel": "sometimes"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecConfig().shards = 2

    def test_paper_exact_pins_paper_accounting_knobs(self):
        config = ExecConfig.paper_exact()
        assert config.filter_kernel == "off"
        assert not config.kernel_enabled
        assert config.shards == 1
        assert config.pool_capacity == 0
        assert not config.batched
        assert config.parallelism == 1
        assert not config.memoize and not config.dedupe_pages

    def test_with_options(self):
        config = ExecConfig().with_options(shards=4, parallelism=2)
        assert (config.shards, config.parallelism) == (4, 2)

    def test_json_round_trip(self):
        config = ExecConfig(shards=4, partitioner="hash", filter_kernel="off")
        assert ExecConfig.from_json(config.to_json()) == config

    def test_summary_lists_only_non_defaults(self):
        assert ExecConfig().summary() == "ExecConfig(defaults)"
        assert "shards=4" in ExecConfig(shards=4).summary()

    def test_from_env_reads_each_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_FILTER_KERNEL", "off")
        monkeypatch.setenv("REPRO_SHARD_PARALLELISM", "3")
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        config = ExecConfig.from_env()
        assert config.filter_kernel == "off" and not config.kernel_enabled
        assert config.parallelism == 3
        assert config.full_scale

    def test_from_env_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PARALLELISM", "3")
        assert ExecConfig.from_env(parallelism=2).parallelism == 2

    def test_from_env_warns_on_unknown_repro_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_FITLER_KERNEL", "off")  # the classic typo
        with pytest.warns(UserWarning, match="REPRO_FITLER_KERNEL"):
            ExecConfig.from_env()


class TestEnvModule:
    def test_env_value_rejects_unregistered_keys(self):
        from repro.env import env_value

        with pytest.raises(KeyError):
            env_value("REPRO_NOT_A_KNOB")

    def test_warn_unknown_keys_returns_offenders(self, monkeypatch):
        from repro.env import warn_unknown_keys

        monkeypatch.setenv("REPRO_BOGUS", "1")
        with pytest.warns(UserWarning):
            assert warn_unknown_keys() == ["REPRO_BOGUS"]

    def test_clean_environment_warns_nothing(self):
        from repro.env import warn_unknown_keys

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert warn_unknown_keys({"REPRO_FULL_SCALE": "1", "PATH": "x"}) == []

    def test_filter_kernel_env_still_routes_through_env_module(self, monkeypatch):
        monkeypatch.setenv("REPRO_FILTER_KERNEL", "off")
        assert UTree(2).kernel is None
        monkeypatch.setenv("REPRO_FILTER_KERNEL", "on")
        assert UTree(2).kernel is not None


class TestSpecs:
    def test_range_spec_validates(self):
        with pytest.raises(ValueError):
            RangeSpec(Rect([0, 0], [1, 1]), 0.0)
        with pytest.raises(TypeError):
            RangeSpec(([0, 0], [1, 1]), 0.5)

    def test_range_spec_box_and_query(self):
        spec = RangeSpec.box([0, 0], [10, 10], 0.5)
        query = spec.to_query()
        assert isinstance(query, ProbRangeQuery)
        assert query.threshold == 0.5 and spec.dim == 2

    def test_nearest_spec_validates(self):
        with pytest.raises(ValueError):
            NearestSpec([0, 0], k=0)
        with pytest.raises(ValueError):
            NearestSpec([0, 0], mode="fuzzy")
        spec = NearestSpec(np.array([1.0, 2.0]), k=2)
        assert spec.point == (1.0, 2.0) and spec.dim == 2

    def test_result_membership(self):
        result = Result(spec=RangeSpec.box([0, 0], [1, 1], 0.5), method="utree",
                        object_ids=[3, 1, 2])
        assert 2 in result and 9 not in result
        assert result.sorted_ids() == [1, 2, 3]
        assert len(result) == 3


class TestEquivalenceMatrix:
    """``db.run`` == legacy executors across the full knob matrix."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_batched_facade_matches_legacy_batch_executor(
        self, structures, method, kernel, shards, parallelism
    ):
        structure = structures(method, kernel, shards)
        queries = [spec.to_query() for spec in _specs()]
        legacy = BatchExecutor(
            structure, parallelism=parallelism
        ).run(queries)

        db = Database.from_methods(
            {method: structure},
            ExecConfig(
                filter_kernel=kernel, shards=shards, parallelism=parallelism,
                mc_samples=N_SAMPLES, seed=SEED,
            ),
        )
        result = db.run(_specs())

        assert [r.object_ids for r in result] == [
            a.object_ids for a in legacy.answers
        ]
        assert [r.stats.node_accesses for r in result] == [
            a.stats.node_accesses for a in legacy.answers
        ]
        assert [r.method for r in result] == [method] * len(queries)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_unbatched_facade_matches_legacy_query_executor(
        self, structures, method, kernel, shards
    ):
        structure = structures(method, kernel, shards)
        executor = QueryExecutor(structure)
        legacy = [executor.execute(spec.to_query()) for spec in _specs()]

        db = Database.from_methods(
            {method: structure},
            ExecConfig(
                filter_kernel=kernel, shards=shards, batched=False,
                memoize=False, dedupe_pages=False,
                mc_samples=N_SAMPLES, seed=SEED,
            ),
        )
        result = db.run(_specs())

        for facade_result, answer in zip(result, legacy):
            assert facade_result.object_ids == answer.object_ids
            assert facade_result.stats.node_accesses == answer.stats.node_accesses
            assert (
                facade_result.stats.data_page_reads == answer.stats.data_page_reads
            )

    def test_created_database_matches_hand_built_structure(self):
        """``Database.create`` wiring == constructing the tree by hand."""
        objects = _objects()
        db = Database.create(
            objects, ExecConfig(mc_samples=N_SAMPLES, seed=SEED)
        )
        tree = UTree(2, estimator=_estimator())
        for obj in objects:
            tree.insert(obj)
        for spec in _specs():
            facade = db.query(spec)
            direct = tree.query(spec.to_query())
            assert facade.object_ids == direct.object_ids
            assert facade.stats.node_accesses == direct.stats.node_accesses


class TestPaperExactAccounting:
    def test_paper_exact_reproduces_seed_counters(self):
        """Node accesses, data pages and P_app counts match ``tree.query``."""
        objects = _objects()
        db = Database.create(
            objects,
            ExecConfig.paper_exact().with_options(
                mc_samples=N_SAMPLES, seed=SEED
            ),
        )
        seed_tree = UTree(2, estimator=_estimator(), filter_kernel="off")
        for obj in objects:
            seed_tree.insert(obj)

        for spec in _specs():
            facade = db.query(spec)
            seed_answer = seed_tree.query(spec.to_query())
            assert facade.object_ids == seed_answer.object_ids
            fs, ss = facade.stats, seed_answer.stats
            assert fs.node_accesses == ss.node_accesses
            assert fs.data_page_reads == ss.data_page_reads
            assert fs.prob_computations == ss.prob_computations
            assert fs.validated_directly == ss.validated_directly
            assert fs.pruned == ss.pruned
            # Capacity-0 accounting: physical == logical, no cache hits.
            assert fs.physical_reads == fs.node_accesses + fs.data_page_reads
            assert fs.cache_hits == 0

    def test_paper_exact_uses_scalar_filter_path(self):
        db = Database.create(
            _objects()[:10],
            ExecConfig.paper_exact().with_options(mc_samples=400, seed=SEED),
        )
        assert db.access_method("utree").kernel is None


class TestPlannerAndExplain:
    @pytest.fixture(scope="class")
    def db(self):
        # Kernel pinned on: the CI matrix's REPRO_FILTER_KERNEL=off leg
        # must not flip what this class asserts about explain().
        return Database.create(
            _objects(),
            ExecConfig(mc_samples=N_SAMPLES, seed=SEED, filter_kernel="on"),
            methods=("utree", "scan"),
        )

    def test_explain_prices_every_method(self, db):
        explanation = db.explain(_specs()[0])
        assert set(explanation.estimates) == {"utree", "scan"}
        assert explanation.choice in ("utree", "scan")
        assert explanation.shards == 1 and explanation.shard_probes == ()
        assert explanation.filter_kernel is True
        assert "estimated I/O" in explanation.summary()

    def test_explain_does_not_execute(self, db):
        io = db.access_method("utree").io
        reads_before = io.reads
        db.explain(_specs()[3])
        assert db.access_method("utree").io.reads == reads_before

    def test_explain_respects_pin(self, db):
        assert db.explain(_specs()[0], method="scan").choice == "scan"
        with pytest.raises(KeyError):
            db.explain(_specs()[0], method="upcr")

    def test_explain_rejects_nearest_specs(self, db):
        with pytest.raises(TypeError):
            db.explain(NearestSpec([0, 0]))

    def test_planner_routing_answers_match_pins(self, db):
        routed = db.run(_specs())
        for spec, result in zip(_specs(), routed):
            assert result.method in ("utree", "scan")
            pinned = db.query(spec, method="utree")
            assert result.sorted_ids() == pinned.sorted_ids()

    def test_planner_prices_methods_populated_after_empty_create(self):
        """Cost models are lazy: create([]) then insert still gets priced."""
        db = Database.create(
            [],
            ExecConfig(mc_samples=400, seed=SEED, filter_kernel="on"),
            methods=("utree", "scan"),
            dim=2,
        )
        spec = _specs()[0]
        assert all(
            cost == float("inf") for cost in db.explain(spec).estimates.values()
        )
        for obj in _objects()[:15]:
            db.insert(obj)
        estimates = db.explain(spec).estimates
        assert all(np.isfinite(cost) for cost in estimates.values())

    def test_sharded_explain_reports_probe_plan(self):
        db = Database.create(
            _objects(),
            ExecConfig(shards=4, mc_samples=N_SAMPLES, seed=SEED),
        )
        explanation = db.explain(_specs()[0])
        assert explanation.shards == 4
        assert len(explanation.shard_probes) + explanation.shards_pruned == 4
        assert "shards: probe" in explanation.summary()


class TestNearest:
    def test_nearest_matches_direct_walk(self):
        objects = _objects()
        db = Database.create(objects, ExecConfig(mc_samples=N_SAMPLES, seed=SEED))
        spec = NearestSpec([5000.0, 5000.0], k=3, rounds=400, seed=2)
        facade = db.nearest(spec)
        direct = probabilistic_nearest_neighbors(
            db.access_method("utree"), np.array(spec.point), rounds=400, seed=2
        )
        assert facade.object_ids == [c.oid for c in direct.candidates[:3]]
        assert facade.nn.node_accesses == direct.node_accesses
        assert facade.stats.result_count == len(facade.object_ids)

    def test_mixed_spec_batch_preserves_submission_order(self):
        db = Database.create(_objects(), ExecConfig(mc_samples=N_SAMPLES, seed=SEED))
        specs = [_specs()[0], NearestSpec([4000.0, 4000.0], rounds=200), _specs()[1]]
        result = db.run(specs)
        assert [type(r.spec) for r in result] == [RangeSpec, NearestSpec, RangeSpec]
        assert result[1].nn is not None

    def test_scan_only_database_rejects_nearest(self):
        db = Database.create(
            _objects()[:10],
            ExecConfig(mc_samples=400, seed=SEED),
            methods=("scan",),
        )
        with pytest.raises(ValueError, match="U-tree"):
            db.nearest(NearestSpec([0.0, 0.0]))


class TestUpdates:
    def test_insert_delete_round_trip(self):
        objects = _objects()
        db = Database.create([], ExecConfig(mc_samples=400, seed=SEED), dim=2)
        costs = [db.insert(obj) for obj in objects[:12]]
        assert len(db) == 12
        assert all(cost.io_total >= 0 for cost in costs)
        assert db.delete(objects[0].oid) is not None
        assert db.delete(999_999) is None
        assert len(db) == 11


class TestSaveOpen:
    def test_monolithic_round_trip_preserves_answers_and_config(self, tmp_path):
        config = ExecConfig(mc_samples=N_SAMPLES, seed=SEED, filter_kernel="on")
        db = Database.create(_objects(), config)
        path = tmp_path / "db.npz"
        db.save(path)
        reopened = Database.open(path)
        assert reopened.config == config
        assert len(reopened) == len(db)
        for spec in _specs():
            assert reopened.query(spec).sorted_ids() == db.query(spec).sorted_ids()

    def test_sharded_round_trip_preserves_answers(self, tmp_path):
        """The shapes serialize.py alone cannot round-trip, the facade can."""
        config = ExecConfig(
            shards=4, partitioner="hash", mc_samples=N_SAMPLES, seed=SEED
        )
        db = Database.create(_objects(), config, methods=("utree", "scan"))
        path = tmp_path / "sharded.npz"
        db.save(path)
        reopened = Database.open(path)
        assert reopened.config == config
        assert reopened.method_names == ["utree", "scan"]
        assert isinstance(reopened.access_method("utree"), ShardedAccessMethod)
        assert reopened.access_method("utree").shard_count == 4
        for spec in _specs():
            for method in ("utree", "scan"):
                assert (
                    reopened.query(spec, method=method).sorted_ids()
                    == db.query(spec, method=method).sorted_ids()
                )

    def test_open_honours_config_override(self, tmp_path):
        db = Database.create(_objects(), ExecConfig(mc_samples=N_SAMPLES, seed=SEED))
        path = tmp_path / "db.npz"
        db.save(path)
        reopened = Database.open(
            path, ExecConfig(mc_samples=N_SAMPLES, seed=SEED, filter_kernel="off")
        )
        assert reopened.access_method("utree").kernel is None
        assert (
            reopened.query(_specs()[0]).sorted_ids()
            == db.query(_specs()[0]).sorted_ids()
        )

    def test_monolithic_open_uses_fitted_archive_not_rebuild(self, tmp_path):
        """Facade-saved U-trees reopen through load_utree (no CFB refits)."""
        from repro.api import database as database_module

        db = Database.create(_objects()[:12], ExecConfig(mc_samples=400, seed=SEED))
        path = tmp_path / "db.npz"
        db.save(path)
        with np.load(path) as archive:
            # The fitted format: CFB stacks present, no descriptor table.
            assert "outer" in archive and "descriptors" in archive
            meta = __import__("json").loads(str(archive[database_module._META_KEY]))
        assert meta["format"] == database_module._FORMAT_UTREE

    def test_monolithic_round_trip_preserves_custom_catalog(self, tmp_path):
        from repro.core.catalog import UCatalog

        catalog = UCatalog.evenly_spaced(8)
        db = Database.create(
            _objects()[:12], ExecConfig(mc_samples=400, seed=SEED), catalog=catalog
        )
        path = tmp_path / "db.npz"
        db.save(path)
        reopened = Database.open(path)
        assert reopened.access_method("utree").catalog == catalog

    def test_sharded_round_trip_preserves_custom_catalog(self, tmp_path):
        from repro.core.catalog import UCatalog

        catalog = UCatalog.evenly_spaced(7)
        db = Database.create(
            _objects()[:12],
            ExecConfig(shards=2, mc_samples=400, seed=SEED),
            catalog=catalog,
        )
        path = tmp_path / "sharded.npz"
        db.save(path)
        reopened = Database.open(path)
        assert reopened.access_method("utree").shards[0].catalog == catalog

    def test_plain_save_utree_archive_opens_as_database(self, tmp_path):
        objects = _objects()
        tree = UTree(2, estimator=_estimator())
        for obj in objects:
            tree.insert(obj)
        path = tmp_path / "plain.npz"
        save_utree(tree, path)
        db = Database.open(path, ExecConfig(mc_samples=N_SAMPLES, seed=SEED))
        assert db.method_names == ["utree"]
        spec = _specs()[0]
        assert db.query(spec).sorted_ids() == sorted(
            tree.query(spec.to_query()).object_ids
        )

    def test_save_utree_rejects_clashing_extra_keys(self, tmp_path):
        tree = UTree(2, estimator=_estimator())
        with pytest.raises(ValueError, match="clash"):
            save_utree(tree, tmp_path / "x.npz", extra={"oids": "nope"})


class TestStatsErgonomics:
    @pytest.fixture(scope="class")
    def run_result(self):
        db = Database.create(
            _objects(), ExecConfig(shards=4, mc_samples=N_SAMPLES, seed=SEED)
        )
        return db.run(_specs())

    def test_query_stats_repr_and_summary(self, run_result):
        stats = run_result[0].stats
        assert "QueryStats(io=" in repr(stats)
        assert "logical I/O" in stats.summary()

    def test_batch_stats_repr_and_summary_table(self, run_result):
        batch = run_result.batch
        assert batch is not None
        assert repr(batch).startswith("BatchStats(")
        table = batch.summary()
        assert "metric" in table and "P_app computed" in table
        # The per-shard breakdown rides along as aligned rows.
        assert "shard" in table and "probes" in table

    def test_shard_stats_repr(self, run_result):
        shard_stats = run_result.batch.shard_stats
        assert shard_stats
        assert repr(shard_stats[0]).startswith("ShardStats(#0")

    def test_run_result_summary_is_one_aligned_table(self, run_result):
        text = run_result.summary()
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["#", "spec", "method"]
        # Header, rule and one row per spec, all equally wide.
        assert len({len(line) for line in lines[: 2 + len(run_result)]}) == 1

    def test_database_repr_and_summary(self):
        db = Database.create(
            _objects()[:10], ExecConfig(mc_samples=400, seed=SEED)
        )
        assert repr(db).startswith("Database(methods=['utree']")
        assert "utree: 10 objects" in db.summary()


class TestBuildDatabaseGlue:
    def test_monolithic_pool_capacity_is_wired(self):
        """A non-sharded pool_capacity must attach a real buffer pool."""
        from repro.experiments.config import Scale
        from repro.experiments.data import build_database, clear_caches

        micro = Scale(
            name="micro-pool",
            lb_objects=100,
            ca_objects=100,
            aircraft_objects=100,
            queries_per_workload=2,
            mc_samples=400,
        )
        clear_caches()
        try:
            db = build_database(
                "LB", micro, methods=("utree",),
                config=ExecConfig(pool_capacity=256),
            )
            assert db.access_method("utree").pool is not None
            assert db.config.pool_capacity == 256
        finally:
            clear_caches()


class TestReproducibleSweeps:
    def test_clear_memos_makes_repeated_runs_report_identical_counters(self):
        db = Database.create(_objects(), ExecConfig(mc_samples=400, seed=SEED))
        first = db.run(_specs())
        db.clear_memos()
        second = db.run(_specs())
        assert [r.sorted_ids() for r in first] == [r.sorted_ids() for r in second]
        assert [r.stats.prob_computations for r in first] == [
            r.stats.prob_computations for r in second
        ]

    def test_fig_run_counters_are_reproducible_under_batched_config(self):
        from repro.experiments.config import Scale
        from repro.experiments.data import clear_caches
        from repro.experiments import fig10

        micro = Scale(
            name="micro-memo",
            lb_objects=100,
            ca_objects=100,
            aircraft_objects=100,
            queries_per_workload=2,
            mc_samples=400,
        )
        clear_caches()
        try:
            config = ExecConfig(batched=True)
            kwargs = dict(datasets=("LB",), pq_values=(0.3, 0.7), config=config)
            first = fig10.run(micro, **kwargs)
            second = fig10.run(micro, **kwargs)
            assert (
                first["LB"]["utree"]["prob_computations"]
                == second["LB"]["utree"]["prob_computations"]
            )
        finally:
            clear_caches()

    def test_mixed_batch_observes_range_stats_only(self):
        db = Database.create(
            _objects(),
            ExecConfig(mc_samples=400, seed=SEED),
            methods=("utree", "scan"),
        )
        range_only = db.run(_specs())
        calibrated = db.planner.data_records_per_page
        db.run([_specs()[0], NearestSpec([4000.0, 4000.0], rounds=3000)])
        mixed = db.run([_specs()[0]])
        # The NN walk's counters must not have skewed the packing EWMA
        # beyond what the range spec alone would have contributed.
        db2 = Database.create(
            _objects(),
            ExecConfig(mc_samples=400, seed=SEED),
            methods=("utree", "scan"),
        )
        db2.run(_specs())
        db2.run([_specs()[0]])
        db2.run([_specs()[0]])
        assert db.planner.data_records_per_page == pytest.approx(
            db2.planner.data_records_per_page
        )
        assert range_only is not None and mixed is not None
        assert calibrated > 0


class TestDeprecationShims:
    def test_unknown_harness_knob_raises_type_error(self):
        from repro.experiments.harness import config_from_knobs

        with pytest.raises(TypeError, match="unknown harness knobs"):
            config_from_knobs(None, shard=4)  # typo for shards=

    def test_run_workload_batched_warns_and_still_works(self):
        from repro.experiments.harness import run_workload_batched

        structure = _legacy_structure("utree", "on", 1)
        queries = [spec.to_query() for spec in _specs()[:2]]
        with pytest.warns(DeprecationWarning, match="Database.run"):
            stats = run_workload_batched(structure, queries)
        assert stats.count == 2

    def test_config_from_knobs_folds_and_warns(self):
        from repro.experiments.harness import config_from_knobs

        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = config_from_knobs(
                None, shards=4, partitioner="hash", filter_kernel="off"
            )
        assert config.shards == 4
        assert config.partitioner == "hash"
        assert config.filter_kernel == "off"
        assert not config.batched  # the harness default stays paper-style

    def test_config_from_knobs_drops_parallelism_in_unbatched_runs(self):
        """The old signatures ignored parallelism outside batched mode."""
        from repro.experiments.harness import config_from_knobs

        with pytest.warns(DeprecationWarning):
            config = config_from_knobs(None, parallelism=4)
        assert not config.batched and config.parallelism == 1
        with pytest.warns(DeprecationWarning):
            config = config_from_knobs(None, batched=True, parallelism=4)
        assert config.batched and config.parallelism == 4

    def test_config_from_knobs_passthrough_is_silent(self):
        from repro.experiments.harness import config_from_knobs

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = config_from_knobs(ExecConfig(shards=2))
        assert config.shards == 2

    def test_fig_harness_legacy_knobs_fold_into_config(self):
        from repro.experiments.config import Scale
        from repro.experiments.data import clear_caches
        from repro.experiments import fig9

        clear_caches()
        micro = Scale(
            name="micro-api",
            lb_objects=120,
            ca_objects=120,
            aircraft_objects=120,
            queries_per_workload=2,
            mc_samples=600,
        )
        try:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                result = fig9.run(
                    micro, datasets=("LB",), qs_values=(800.0,), shards=2
                )
            assert "shards=2" in result["LB"]["config"]
        finally:
            clear_caches()
